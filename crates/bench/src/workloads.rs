//! Dataset registry: seeded synthetic substitutes for the paper's Table 1
//! graphs, at three scales.
//!
//! | ours | paper original | family |
//! |---|---|---|
//! | `synth-social-large` | twitter (39.8M nodes, Δ 16) | preferential attachment |
//! | `synth-social-small` | livejournal (4.0M nodes, Δ 21) | preferential attachment |
//! | `synth-road-ca/pa/tx` | roads-CA/PA/TX (Δ 786–1054) | sparsified grid |
//! | `mesh` | mesh1000 (10⁶ nodes, Δ 1998) | 2-D mesh (exact at `full`) |
//!
//! See DESIGN.md §2 for why each substitution preserves the behaviour the
//! evaluation depends on.

use pardec_graph::{generators, CsrGraph};

/// Experiment scale.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Tiny graphs — full suite in a couple of minutes.
    Ci,
    /// Default — the shapes of all tables reproduce comfortably.
    Default,
    /// Paper scale where feasible (mesh is exactly 1000×1000).
    Full,
}

impl Scale {
    /// Parses `"ci" | "default" | "full"` (case-insensitive; panics otherwise).
    pub fn parse(s: &str) -> Scale {
        match s.to_ascii_lowercase().as_str() {
            "ci" => Scale::Ci,
            "default" => Scale::Default,
            "full" => Scale::Full,
            other => panic!("unknown scale {other:?} (expected ci|default|full)"),
        }
    }
}

/// Which diameter regime a dataset belongs to (drives granularity choices,
/// as in §6.1).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Regime {
    /// Social-network-like: low diameter, high expansion.
    SmallDiameter,
    /// Road/mesh-like: long diameter, low doubling dimension.
    LargeDiameter,
}

/// A named dataset instance.
pub struct Dataset {
    pub name: &'static str,
    /// The paper dataset this stands in for.
    pub paper_name: &'static str,
    pub regime: Regime,
    pub graph: CsrGraph,
}

fn social(name: &'static str, paper: &'static str, n: usize, m: usize, seed: u64) -> Dataset {
    // Windowed preferential attachment: heavy-tailed degrees with the
    // window fraction tuned so the diameter lands near the original's
    // (twitter 16, livejournal 21) instead of plain BA's degenerate ~5.
    let window_frac = if m >= 8 { 0.025 } else { 0.016 };
    Dataset {
        name,
        paper_name: paper,
        regime: Regime::SmallDiameter,
        graph: generators::windowed_preferential_attachment(n, m, window_frac, seed),
    }
}

fn road(name: &'static str, paper: &'static str, side: usize, seed: u64) -> Dataset {
    Dataset {
        name,
        paper_name: paper,
        regime: Regime::LargeDiameter,
        graph: generators::road_network(side, side, 0.4, seed),
    }
}

/// The six Table 1 datasets at the given scale, in the paper's row order.
pub fn datasets(scale: Scale) -> Vec<Dataset> {
    match scale {
        Scale::Ci => vec![
            social("synth-social-large", "twitter", 20_000, 8, 101),
            social("synth-social-small", "livejournal", 10_000, 6, 102),
            road("synth-road-ca", "roads-CA", 110, 103),
            road("synth-road-pa", "roads-PA", 90, 104),
            road("synth-road-tx", "roads-TX", 100, 105),
            Dataset {
                name: "mesh",
                paper_name: "mesh1000",
                regime: Regime::LargeDiameter,
                graph: generators::mesh(100, 100),
            },
        ],
        Scale::Default => vec![
            social("synth-social-large", "twitter", 120_000, 8, 101),
            social("synth-social-small", "livejournal", 60_000, 6, 102),
            road("synth-road-ca", "roads-CA", 400, 103),
            road("synth-road-pa", "roads-PA", 330, 104),
            road("synth-road-tx", "roads-TX", 370, 105),
            Dataset {
                name: "mesh",
                paper_name: "mesh1000",
                regime: Regime::LargeDiameter,
                graph: generators::mesh(320, 320),
            },
        ],
        Scale::Full => vec![
            social("synth-social-large", "twitter", 400_000, 8, 101),
            social("synth-social-small", "livejournal", 200_000, 6, 102),
            road("synth-road-ca", "roads-CA", 700, 103),
            road("synth-road-pa", "roads-PA", 580, 104),
            road("synth-road-tx", "roads-TX", 650, 105),
            Dataset {
                name: "mesh",
                paper_name: "mesh1000",
                regime: Regime::LargeDiameter,
                graph: generators::mesh(1000, 1000),
            },
        ],
    }
}

/// The two social datasets only (Figure 1's bases).
pub fn social_datasets(scale: Scale) -> Vec<Dataset> {
    let mut all = datasets(scale);
    all.truncate(2);
    all
}

/// Decomposition granularity targets per §6.1: roughly three orders of
/// magnitude below `n` for small-diameter graphs and two for large-diameter
/// ones — rescaled to our graph sizes (minimum 40 clusters so the quotient
/// stays meaningful).
pub fn granularity_target(n: usize, regime: Regime) -> usize {
    let divisor = match regime {
        Regime::SmallDiameter => 1000,
        Regime::LargeDiameter => 100,
    };
    (n / divisor).max(40)
}

/// Maps a target cluster count to CLUSTER's τ. Each batch activates
/// ≈ `4·τ·log₂ n` centers and ≈ `log₂(n/target)` batches run before the
/// loop threshold is reached, so `τ ≈ target / (4·log₂ n·batches)` lands in
/// the target's ballpark (the tables report the achieved `n_C`, exactly like
/// the paper, which cannot fix it a priori either).
pub fn tau_for_target(n: usize, target: usize) -> usize {
    let logn = (n.max(2) as f64).log2();
    let batches = ((n.max(2) as f64) / target.max(1) as f64).log2().max(1.0) + 1.0;
    ((target as f64 / (4.0 * logn * batches)).round() as usize).max(1)
}

/// Ground-truth diameter of a dataset.
///
/// Long-diameter graphs (roads, meshes) use exact iFUB, whose fringes are
/// tiny there. For large low-diameter social graphs iFUB degenerates toward
/// APSP, so — exactly like the paper's footnote 2 ("the true diameter ...
/// computed through approximate yet very accurate algorithms") — we return
/// the best multi-start double-sweep lower bound, which is almost always
/// exact on such graphs.
pub fn exact_diameter(g: &CsrGraph) -> u32 {
    let n = g.num_nodes();
    let sweep_lb = (0..4)
        .map(|i| pardec_graph::diameter::double_sweep(g, (i * 97 % n.max(1)) as u32).lower_bound)
        .max()
        .unwrap_or(0);
    if sweep_lb >= 60 || n <= 25_000 {
        pardec_graph::diameter::ifub(g, 0).0
    } else {
        sweep_lb
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ci_datasets_have_expected_shapes() {
        let ds = datasets(Scale::Ci);
        assert_eq!(ds.len(), 6);
        for d in &ds {
            assert!(
                pardec_graph::components::is_connected(&d.graph),
                "{} disconnected",
                d.name
            );
        }
        // Social graphs: low diameter. Roads/mesh: long diameter.
        let social_ecc = pardec_graph::traversal::eccentricity(&ds[0].graph, 0);
        assert!(social_ecc < 20, "social ecc {social_ecc}");
        let mesh_ecc = pardec_graph::traversal::eccentricity(&ds[5].graph, 0);
        assert!(mesh_ecc >= 198, "mesh ecc {mesh_ecc}");
    }

    #[test]
    fn granularity_targets() {
        assert_eq!(granularity_target(100_000, Regime::SmallDiameter), 100);
        assert_eq!(granularity_target(100_000, Regime::LargeDiameter), 1000);
        assert_eq!(granularity_target(100, Regime::SmallDiameter), 40);
    }

    #[test]
    fn tau_mapping_monotone() {
        assert!(tau_for_target(100_000, 2000) > tau_for_target(100_000, 100));
        assert!(tau_for_target(1000, 1) >= 1);
    }

    #[test]
    fn scale_parse() {
        assert_eq!(Scale::parse("CI"), Scale::Ci);
        assert_eq!(Scale::parse("full"), Scale::Full);
    }

    #[test]
    #[should_panic(expected = "unknown scale")]
    fn scale_parse_rejects_garbage() {
        Scale::parse("huge");
    }
}
