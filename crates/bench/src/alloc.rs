//! Counting global allocator for bench-side memory accounting.
//!
//! Wraps [`std::alloc::System`] and tracks the number of live heap bytes
//! plus the high-water mark, so every JSONL bench row can report
//! `peak_alloc_bytes` — the resident-heap figure the compressed-backend
//! acceptance criterion is judged on. Registered as the global allocator
//! only inside this crate (binaries and benches) behind the default-on
//! `count-alloc` feature; the library crates never pay for it.
//!
//! Counters are plain relaxed atomics: the peak is maintained with a
//! `fetch_max` CAS loop, so concurrent allocations from rayon workers are
//! tallied without locks. The numbers are *requested* bytes (the `Layout`
//! size), not allocator-internal slack, which is exactly what the
//! bytes-per-edge comparisons in `bench_compressed` want.
//!
//! The two shared counters cost real time under parallel allocation
//! pressure — roughly 2× on the allocation-heavy `bench_mr_primitives`
//! cases (`crates/bench/results/mr_primitives_scratch.jsonl`). Memory
//! rows stay honest either way; for timing-focused comparisons run the
//! bench with `--no-default-features` to drop back to the system
//! allocator (rows then report `peak_alloc_bytes: 0`).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering::Relaxed};

/// A [`GlobalAlloc`] that forwards to [`System`] and counts bytes.
pub struct CountingAlloc;

static CURRENT: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);

#[inline]
fn on_alloc(size: usize) {
    let now = CURRENT.fetch_add(size, Relaxed) + size;
    PEAK.fetch_max(now, Relaxed);
}

#[inline]
fn on_dealloc(size: usize) {
    CURRENT.fetch_sub(size, Relaxed);
}

// SAFETY: pure pass-through to `System`; the atomics never affect the
// pointers handed back to callers.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            on_alloc(layout.size());
        }
        p
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc_zeroed(layout);
        if !p.is_null() {
            on_alloc(layout.size());
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        on_dealloc(layout.size());
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() {
            on_dealloc(layout.size());
            on_alloc(new_size);
        }
        p
    }
}

/// Live heap bytes right now (0 when the counting allocator is disabled).
pub fn current_bytes() -> usize {
    CURRENT.load(Relaxed)
}

/// High-water mark of live heap bytes since start / last [`reset_peak`]
/// (0 when the counting allocator is disabled).
pub fn peak_bytes() -> usize {
    PEAK.load(Relaxed)
}

/// Restarts the high-water mark from the current live figure, so each
/// bench phase can report its own peak.
pub fn reset_peak() {
    PEAK.store(CURRENT.load(Relaxed), Relaxed);
}

/// True when the counting allocator is registered (`count-alloc` feature).
pub fn enabled() -> bool {
    cfg!(feature = "count-alloc")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_move_with_allocations() {
        if !enabled() {
            return;
        }
        reset_peak();
        let before = current_bytes();
        let v: Vec<u8> = Vec::with_capacity(1 << 20);
        assert!(current_bytes() >= before + (1 << 20));
        assert!(peak_bytes() >= before + (1 << 20));
        drop(v);
        assert!(current_bytes() < before + (1 << 20));
        // Peak survives the drop.
        assert!(peak_bytes() >= before + (1 << 20));
    }

    #[test]
    fn reset_peak_rebases_to_current() {
        if !enabled() {
            return;
        }
        let v: Vec<u8> = Vec::with_capacity(1 << 16);
        reset_peak();
        assert!(peak_bytes() <= current_bytes() + 1024);
        drop(v);
    }
}
