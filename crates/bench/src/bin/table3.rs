//! **Table 3** — diameter approximation quality at two clustering
//! granularities (coarser / finer).
//!
//! Columns per granularity: quotient size `n_C`, `m_C`, the algorithm's
//! estimate `Δ′` (the weighted-quotient upper bound, as in the paper's
//! experiments), and the true diameter `Δ`.

use pardec_bench::{report::Table, scale_from_args, workloads};
use pardec_core::{approximate_diameter, DiameterParams};

fn main() {
    let scale = scale_from_args();
    println!("Table 3: diameter approximation (scale {scale:?})\n");
    let mut t = Table::new([
        "dataset", "co:nC", "co:mC", "co:D'", "fi:nC", "fi:mC", "fi:D'", "D", "D'/D",
    ]);
    for d in workloads::datasets(scale) {
        let n = d.graph.num_nodes();
        let delta = workloads::exact_diameter(&d.graph);
        let coarser = workloads::tau_for_target(n, (n / 500).max(30));
        // Ensure the finer granularity is a genuinely different setting even
        // at CI scale, where both targets can map to τ = 1.
        let finer = workloads::tau_for_target(n, (n / 50).max(160)).max(coarser * 8);
        let run = |tau: usize| approximate_diameter(&d.graph, &DiameterParams::new(tau, 11));
        let co = run(coarser);
        let fi = run(finer);
        eprintln!(
            "[table3] {}: coarser tau {coarser} -> {} clusters; finer tau {finer} -> {}",
            d.name, co.quotient_nodes, fi.quotient_nodes
        );
        let ratio = fi.estimate() as f64 / delta.max(1) as f64;
        t.row([
            d.name.to_string(),
            co.quotient_nodes.to_string(),
            co.quotient_edges.to_string(),
            co.estimate().to_string(),
            fi.quotient_nodes.to_string(),
            fi.quotient_edges.to_string(),
            fi.estimate().to_string(),
            delta.to_string(),
            format!("{ratio:.2}"),
        ]);
    }
    t.print();
    println!("\npaper shape: Δ′/Δ < 2 on every graph and both granularities; the");
    println!("approximation quality is insensitive to the clustering granularity.");
}
