//! **Table 2** — CLUSTER vs MPX decomposition quality.
//!
//! For each dataset: the number of quotient nodes `n_C`, quotient edges
//! `m_C`, and the maximum cluster radius `r` of both algorithms, with MPX's
//! β tuned (as in the paper, conservatively in MPX's favour) to yield a
//! comparable-but-larger number of clusters than CLUSTER.

use pardec_bench::{report::Table, scale_from_args, workloads};
use pardec_core::{cluster, mpx, ClusterParams};
use pardec_graph::quotient::quotient;

fn main() {
    let scale = scale_from_args();
    println!("Table 2: CLUSTER vs MPX (scale {scale:?})\n");
    let mut t = Table::new([
        "dataset", "C:nC", "C:mC", "C:r", "M:nC", "M:mC", "M:r", "beta",
    ]);
    for d in workloads::datasets(scale) {
        let n = d.graph.num_nodes();
        let target = workloads::granularity_target(n, d.regime);
        let tau = workloads::tau_for_target(n, target);
        let ours = cluster(&d.graph, &ClusterParams::new(tau, 7));
        let c = &ours.clustering;
        let qc = quotient(&d.graph, &c.assignment, c.num_clusters());

        // Tune β so MPX yields a *comparable but larger* cluster count than
        // CLUSTER — the paper's conservative setup. Exponential search for a
        // bracketing pair, then bisect toward the smallest β that still
        // meets the count.
        let mut lo = c.num_clusters() as f64 / (4.0 * n as f64);
        let mut hi = lo;
        let mut m = mpx(&d.graph, hi, 7);
        for _ in 0..14 {
            if m.clustering.num_clusters() >= c.num_clusters() {
                break;
            }
            lo = hi;
            hi *= 1.8;
            m = mpx(&d.graph, hi, 7);
        }
        let mut beta = hi;
        for _ in 0..6 {
            let mid = (lo + hi) / 2.0;
            let trial = mpx(&d.graph, mid, 7);
            if trial.clustering.num_clusters() >= c.num_clusters() {
                hi = mid;
                beta = mid;
                m = trial;
            } else {
                lo = mid;
            }
        }
        let mc = &m.clustering;
        let qm = quotient(&d.graph, &mc.assignment, mc.num_clusters());
        eprintln!(
            "[table2] {}: tau {tau}, target {target}, CLUSTER {} clusters, MPX {}",
            d.name,
            c.num_clusters(),
            mc.num_clusters()
        );

        t.row([
            d.name.to_string(),
            c.num_clusters().to_string(),
            qc.num_edges().to_string(),
            c.max_radius().to_string(),
            mc.num_clusters().to_string(),
            qm.num_edges().to_string(),
            mc.max_radius().to_string(),
            format!("{beta:.4}"),
        ]);
    }
    t.print();
    println!("\npaper shape: CLUSTER r beats MPX r on every graph (5/6 vs 6/9, 31/61, 30/58,");
    println!("30/55, 34/56); MPX often yields fewer quotient edges on social graphs.");
}
