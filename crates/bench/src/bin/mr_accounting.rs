//! **MR accounting (extra)** — the §5 ledger: rounds, aggregate and peak
//! communication, and the local-memory (`M_L`) demand of CLUSTER, BFS, and
//! HADI on the MR(M_G, M_L) emulation. This is the architecture-independent
//! evidence behind Table 4's timings.
//!
//! Output is JSONL (one object per dataset × algorithm) on stdout — the
//! same artifact shape as `bench_serve`, ready for CI upload. Progress and
//! commentary go to stderr.

use pardec_bench::{scale_from_args, workloads};
use pardec_core::hadi::mr_hadi;
use pardec_core::mr_impl::{mr_bfs, mr_cluster};
use pardec_core::{ClusterParams, HadiParams};
use pardec_mr::MrStats;

/// One JSONL record: identity, round count, and the full ledger split into
/// map-side (pre-combine) and shuffled (post-combine) pairs/bytes.
fn emit(dataset: &str, algo: &str, rounds: usize, stats: &MrStats) {
    println!(
        "{{\"bench\":\"mr_accounting\",\"dataset\":\"{dataset}\",\"algo\":\"{algo}\",\
         \"rounds\":{rounds},\"map_pairs\":{},\"shuffled_pairs\":{},\
         \"map_bytes\":{},\"shuffled_bytes\":{},\"peak_round_pairs\":{},\"peak_ml\":{},\
         \"peak_alloc_bytes\":{}}}",
        stats.total_map_pairs(),
        stats.total_pairs(),
        stats.total_map_bytes(),
        stats.total_bytes(),
        stats.max_round_pairs(),
        stats.max_local_memory(),
        pardec_bench::alloc::peak_bytes(),
    );
}

fn main() {
    let scale = scale_from_args();
    eprintln!("[mr_accounting] rounds / volume / M_L demand (scale {scale:?})");
    for d in workloads::datasets(scale) {
        let g = &d.graph;
        let n = g.num_nodes();
        let tau = workloads::tau_for_target(n, (n / 100).max(120));

        pardec_bench::alloc::reset_peak();
        let r = mr_cluster(g, &ClusterParams::new(tau, 11));
        emit(d.name, "CLUSTER", r.supersteps, &r.stats);

        pardec_bench::alloc::reset_peak();
        let b = mr_bfs(g, 0);
        emit(d.name, "BFS", b.supersteps, &b.stats);

        let mut p = HadiParams::new(11);
        p.trials = if matches!(scale, workloads::Scale::Ci) {
            32
        } else {
            4
        };
        pardec_bench::alloc::reset_peak();
        let (h, stats) = mr_hadi(g, &p);
        emit(d.name, "HADI", h.iterations, &stats);
        eprintln!("[mr_accounting] {} done", d.name);
    }
    eprintln!("[mr_accounting] §5 shape: CLUSTER rounds ≪ BFS ≈ HADI rounds ≈ Δ;");
    eprintln!("[mr_accounting] CLUSTER/BFS move O(m) pairs total, HADI Θ(m) per round.");
}
