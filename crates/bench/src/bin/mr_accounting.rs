//! **MR accounting (extra)** — the §5 ledger: rounds, aggregate and peak
//! communication, and the local-memory (`M_L`) demand of CLUSTER, BFS, and
//! HADI on the MR(M_G, M_L) emulation. This is the architecture-independent
//! evidence behind Table 4's timings.

use pardec_bench::{report::Table, scale_from_args, workloads};
use pardec_core::hadi::mr_hadi;
use pardec_core::mr_impl::{mr_bfs, mr_cluster};
use pardec_core::{ClusterParams, HadiParams};
use pardec_mr::MrStats;

fn main() {
    let scale = scale_from_args();
    println!("MR accounting: rounds / volume / M_L demand (scale {scale:?})\n");
    let mut t = Table::new([
        "dataset",
        "algo",
        "rounds",
        "total pairs",
        "peak round pairs",
        "peak M_L",
    ]);
    let fmt = |name: &str, algo: &str, rounds: usize, stats: &MrStats, t: &mut Table| {
        t.row([
            name.to_string(),
            algo.to_string(),
            rounds.to_string(),
            stats.total_pairs().to_string(),
            stats.max_round_pairs().to_string(),
            stats.max_local_memory().to_string(),
        ]);
    };
    for d in workloads::datasets(scale) {
        let g = &d.graph;
        let n = g.num_nodes();
        let tau = workloads::tau_for_target(n, (n / 100).max(120));

        let r = mr_cluster(g, &ClusterParams::new(tau, 11));
        fmt(d.name, "CLUSTER", r.supersteps, &r.stats, &mut t);

        let b = mr_bfs(g, 0);
        fmt(d.name, "BFS", b.supersteps, &b.stats, &mut t);

        let mut p = HadiParams::new(11);
        p.trials = if matches!(scale, workloads::Scale::Ci) {
            32
        } else {
            4
        };
        let (h, stats) = mr_hadi(g, &p);
        fmt(d.name, "HADI", h.iterations, &stats, &mut t);
        eprintln!("[mr_accounting] {} done", d.name);
    }
    t.print();
    println!("\n§5 shape: CLUSTER rounds ≪ BFS ≈ HADI rounds ≈ Δ; CLUSTER and BFS move");
    println!("O(m) pairs in aggregate, HADI moves Θ(m) pairs per round.");
}
