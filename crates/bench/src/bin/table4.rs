//! **Table 4** — wall time and diameter estimate of our CLUSTER-based
//! algorithm vs the BFS and HADI baselines, all three on the MR(M_G, M_L)
//! emulation so the comparison charges the same per-round costs the paper's
//! Spark cluster does.
//!
//! Extra columns beyond the paper: superstep (round) counts and total
//! shuffled pairs — the architecture-independent explanation of the timings.

use pardec_bench::{
    report::{secs, Table},
    scale_from_args, timed, workloads,
};
use pardec_core::hadi::mr_hadi;
use pardec_core::mr_impl::{mr_bfs, mr_cluster};
use pardec_core::{ClusterParams, HadiParams};
use pardec_graph::diameter::apsp_diameter;
use pardec_graph::traversal::bfs_parallel;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let scale = scale_from_args();
    println!("Table 4: time (s) and estimate vs BFS and HADI, MR emulation (scale {scale:?})\n");
    let mut t = Table::new([
        "dataset",
        "CLUSTER t(D')",
        "BFS t(D')",
        "HADI t(D')",
        "D",
        "rounds C/B/H",
        "Mpairs C/B/H",
    ]);
    for d in workloads::datasets(scale) {
        let g = &d.graph;
        let n = g.num_nodes();
        let delta = workloads::exact_diameter(g);
        let tau = workloads::tau_for_target(n, (n / 100).max(120));

        // Ours: MR CLUSTER + quotient diameter on the driver (one reducer in
        // the paper; the quotient always fits locally here).
        let ((cluster_est, cluster_rounds, cluster_pairs), cluster_time) = timed(|| {
            let r = mr_cluster(g, &ClusterParams::new(tau, 11));
            let c = &r.clustering;
            let wq = c.weighted_quotient(g);
            let est = 2 * c.max_radius() as u64 + wq.apsp_diameter();
            (est, r.supersteps, r.stats.total_pairs())
        });

        // BFS baseline: one parallel BFS from a random source, Δ ≈ 2·ecc.
        let ((bfs_est, bfs_rounds, bfs_pairs), bfs_time) = timed(|| {
            let src = StdRng::seed_from_u64(11).gen_range(0..n) as u32;
            let r = mr_bfs(g, src);
            let ecc = r
                .values
                .iter()
                .filter(|&&d| d != u32::MAX)
                .max()
                .copied()
                .unwrap_or(0);
            (2 * ecc as u64, r.supersteps, r.stats.total_pairs())
        });

        // HADI: sketch propagation, Θ(Δ) rounds × Θ(m) pairs per round. At
        // larger scales fewer trials keep the run affordable without
        // changing the cost profile.
        let trials = match scale {
            workloads::Scale::Ci => 32,
            workloads::Scale::Default => 8,
            workloads::Scale::Full => 4,
        };
        let ((hadi_est, hadi_rounds, hadi_pairs), hadi_time) = timed(|| {
            let mut p = HadiParams::new(11);
            p.trials = trials;
            let (r, stats) = mr_hadi(g, &p);
            (
                r.diameter_estimate as u64,
                r.iterations,
                stats.total_pairs(),
            )
        });

        eprintln!("[table4] {} done (Δ = {delta})", d.name);
        t.row([
            d.name.to_string(),
            format!("{} ({cluster_est})", secs(cluster_time)),
            format!("{} ({bfs_est})", secs(bfs_time)),
            format!("{} ({hadi_est})", secs(hadi_time)),
            delta.to_string(),
            format!("{cluster_rounds}/{bfs_rounds}/{hadi_rounds}"),
            format!(
                "{:.1}/{:.1}/{:.1}",
                cluster_pairs as f64 / 1e6,
                bfs_pairs as f64 / 1e6,
                hadi_pairs as f64 / 1e6
            ),
        ]);
        // Cross-check against the exact diameter on small quotients only.
        let _ = apsp_diameter; // (used by table3 path; kept for parity)
        let _ = bfs_parallel::<pardec_graph::CsrGraph>;
    }
    t.print();
    println!("\npaper shape: on long-diameter graphs CLUSTER beats BFS by ~8-20x and HADI by");
    println!("orders of magnitude (rounds ≪ Δ with aggregate-linear communication); on");
    println!("small-diameter social graphs BFS is comparable or slightly faster.");
}
