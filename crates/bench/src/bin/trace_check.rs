//! **trace_check** — validates `--trace` / `PARDEC_TRACE` JSONL files: every
//! line must parse as a self-contained JSON object carrying the mandatory
//! event keys (`type`, `name`, `thread`, `seq`, `at_us`). Prints one summary
//! line per file and exits nonzero on the first malformed line, with a
//! `file:line:` diagnostic. CI runs this over the trace artifact produced by
//! the `PARDEC_TRACE` smoke leg.

use std::process::ExitCode;

const REQUIRED_KEYS: &[&str] = &["type", "name", "thread", "seq", "at_us"];

/// Validates one trace file, returning the number of events it holds.
fn check_file(path: &str) -> Result<usize, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let mut events = 0usize;
    for (i, line) in text.lines().enumerate() {
        if line.is_empty() {
            continue;
        }
        let keys =
            pardec_obs::validate_object(line).map_err(|e| format!("{path}:{}: {e}", i + 1))?;
        for required in REQUIRED_KEYS {
            if !keys.iter().any(|k| k == required) {
                return Err(format!("{path}:{}: missing key {required:?}", i + 1));
            }
        }
        events += 1;
    }
    if events == 0 {
        return Err(format!("{path}: no trace events"));
    }
    Ok(events)
}

fn main() -> ExitCode {
    let paths: Vec<String> = std::env::args().skip(1).collect();
    if paths.is_empty() {
        eprintln!("usage: trace_check <trace.jsonl> [<trace.jsonl> ...]");
        return ExitCode::FAILURE;
    }
    let mut ok = true;
    for path in &paths {
        match check_file(path) {
            Ok(n) => println!("{path}: {n} events ok"),
            Err(e) => {
                eprintln!("trace_check: {e}");
                ok = false;
            }
        }
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str, content: &str) -> String {
        let path =
            std::env::temp_dir().join(format!("pardec-trace-check-{}-{name}", std::process::id()));
        std::fs::write(&path, content).unwrap();
        path.to_string_lossy().into_owned()
    }

    #[test]
    fn accepts_valid_lines() {
        let good =
            "{\"type\":\"span\",\"name\":\"x\",\"thread\":0,\"seq\":1,\"at_us\":2,\"dur_us\":3}\n";
        let path = tmp("good.jsonl", &good.repeat(3));
        assert_eq!(check_file(&path).unwrap(), 3);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn rejects_bad_json_missing_keys_and_empty() {
        let path = tmp("broken.jsonl", "{\"type\":\"span\",");
        assert!(check_file(&path).unwrap_err().contains(":1:"));
        let _ = std::fs::remove_file(path);
        let path = tmp("missing.jsonl", "{\"type\":\"span\",\"name\":\"x\"}\n");
        assert!(check_file(&path).unwrap_err().contains("missing key"));
        let _ = std::fs::remove_file(path);
        let path = tmp("empty.jsonl", "");
        assert!(check_file(&path).unwrap_err().contains("no trace events"));
        let _ = std::fs::remove_file(path);
    }
}
