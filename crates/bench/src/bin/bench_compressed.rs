//! Compressed-backend bench: gap-coded CSR vs plain CSR on a power-law
//! graph ten times the CI bench scale — one JSON line per (phase, backend).
//!
//! ```text
//! cargo run --release -p pardec-bench --bin bench_compressed -- --scale ci
//! ```
//!
//! Phases:
//!
//! 1. **build** — streaming spill → chunked-sort → merge build of the
//!    compressed graph (bounded memory) vs the in-memory plain-CSR build,
//!    with the streamed bytes asserted identical to the in-memory
//!    compression route.
//! 2. **wave** — full multi-source frontier growth to cover the graph on
//!    each backend; the resulting clusterings must be equal.
//! 3. **cluster** — the paper's CLUSTER(τ) decomposition on each backend;
//!    the resulting clusterings must be equal.
//!
//! Every row reports the graph's resident heap bytes, bytes per undirected
//! edge, wall-clock seconds, arcs/second, and `peak_alloc_bytes` from the
//! crate's counting allocator. A final summary row states the compression
//! ratio (asserted ≥ 3×) and the honest iteration slowdown of the
//! compressed backend on each traversal phase.

use pardec_bench::workloads::{granularity_target, tau_for_target, Regime, Scale};
use pardec_bench::{alloc, scale_from_args, timed};
use pardec_core::cluster::{cluster, ClusterParams};
use pardec_core::growth::GrowthEngine;
use pardec_graph::generators;
use pardec_graph::stream::{build_ccsr_from_spill, EdgeSpillWriter};
use pardec_graph::{CcsrGraph, GraphRepr, NodeId};

const SEED: u64 = 101;
const M_ATTACH: usize = 8;

/// Nodes per scale. CI bench power-law graphs top out at 20 000 nodes
/// (`workloads::social_datasets`); this bench runs ≥ 10× that.
fn nodes_for(scale: Scale) -> usize {
    match scale {
        Scale::Ci => 200_000,
        Scale::Default => 400_000,
        Scale::Full => 1_000_000,
    }
}

/// Window fraction holding the *absolute* attachment window at the CI
/// workload's size (20 000 nodes × 0.025) as `n` grows — scaling nodes
/// without inflating the neighbor-gap distribution, the same locality a
/// renumbered real-world graph exhibits at any size.
fn window_frac_for(n: usize) -> f64 {
    0.025 * 20_000.0 / n as f64
}

#[allow(clippy::too_many_arguments)]
fn emit(
    scale: Scale,
    phase: &str,
    backend: &str,
    n: usize,
    arcs: usize,
    graph_bytes: usize,
    secs: f64,
    peak: usize,
) {
    println!(
        "{{\"bench\":\"bench_compressed\",\"scale\":\"{:?}\",\"phase\":\"{}\",\
         \"backend\":\"{}\",\"nodes\":{},\"arcs\":{},\"graph_bytes\":{},\
         \"bytes_per_edge\":{:.3},\"secs\":{:.6},\"arcs_per_sec\":{:.0},\
         \"peak_alloc_bytes\":{}}}",
        scale,
        phase,
        backend,
        n,
        arcs,
        graph_bytes,
        graph_bytes as f64 / (arcs / 2).max(1) as f64,
        secs,
        arcs as f64 / secs.max(1e-9),
        peak,
    );
}

/// Covers the whole graph from a deterministic center lattice, returning
/// the wave count. The clustering is handed back for identity checks.
fn frontier_wave(g: &GraphRepr) -> (pardec_core::clustering::Clustering, usize) {
    let n = g.num_nodes();
    let mut eng = GrowthEngine::new(g);
    let stride = (n / 64).max(1);
    for c in (0..n).step_by(stride) {
        eng.add_center(c as NodeId);
    }
    let mut waves = 0usize;
    while eng.covered() < n && eng.step() > 0 {
        waves += 1;
    }
    // Power-law PA graphs are connected; a leftover singleton is a bug.
    assert_eq!(eng.covered(), n, "frontier wave left nodes uncovered");
    (eng.finish(), waves)
}

fn main() {
    let scale = scale_from_args();
    let n = nodes_for(scale);
    let window_frac = window_frac_for(n);
    eprintln!(
        "bench_compressed: scale {scale:?}, {n} nodes, m = {M_ATTACH} \
         (count-alloc {})",
        if alloc::enabled() { "on" } else { "off" }
    );

    // ---- phase 1: builds -------------------------------------------------
    let spill_path = std::env::temp_dir().join(format!(
        "pardec-bench-compressed-{}-{n}.spill",
        std::process::id()
    ));

    alloc::reset_peak();
    let (streamed, stream_secs) = timed(|| {
        let mut sink = EdgeSpillWriter::create(&spill_path, n).expect("spill create");
        generators::windowed_preferential_attachment_into(
            &mut sink,
            n,
            M_ATTACH,
            window_frac,
            SEED,
        );
        sink.finish().expect("spill flush");
        // Chunks of 1M edges keep the sort runs ~16 MB each.
        build_ccsr_from_spill(n, &spill_path, 1 << 20).expect("streaming build")
    });
    let stream_peak = alloc::peak_bytes();
    let _ = std::fs::remove_file(&spill_path);

    alloc::reset_peak();
    let (plain, plain_secs) =
        timed(|| generators::windowed_preferential_attachment(n, M_ATTACH, window_frac, SEED));
    let plain_peak = alloc::peak_bytes();

    // Identity: the streamed external-memory build must equal the
    // in-memory compression route byte for byte.
    let from_mem = CcsrGraph::from_csr(&plain);
    assert_eq!(from_mem.raw_index(), streamed.raw_index(), "index diverged");
    assert_eq!(from_mem.raw_data(), streamed.raw_data(), "payload diverged");
    drop(from_mem);

    let arcs = plain.num_arcs();
    let plain_repr = GraphRepr::Plain(plain);
    let comp_repr = GraphRepr::Compressed(streamed);
    let (plain_bytes, comp_bytes) = (plain_repr.heap_bytes(), comp_repr.heap_bytes());
    emit(
        scale,
        "build",
        "plain",
        n,
        arcs,
        plain_bytes,
        plain_secs,
        plain_peak,
    );
    emit(
        scale,
        "build",
        "compressed",
        n,
        arcs,
        comp_bytes,
        stream_secs,
        stream_peak,
    );

    let ratio = plain_bytes as f64 / comp_bytes.max(1) as f64;
    assert!(
        ratio >= 3.0,
        "compression ratio {ratio:.2}x below the 3x acceptance bar"
    );

    // ---- phase 2: frontier wave -----------------------------------------
    alloc::reset_peak();
    let ((wave_plain, waves), wave_plain_secs) = timed(|| frontier_wave(&plain_repr));
    let wave_plain_peak = alloc::peak_bytes();
    alloc::reset_peak();
    let ((wave_comp, _), wave_comp_secs) = timed(|| frontier_wave(&comp_repr));
    let wave_comp_peak = alloc::peak_bytes();
    assert_eq!(wave_plain, wave_comp, "frontier wave clusterings diverged");
    eprintln!(
        "frontier wave: {waves} waves, {} clusters",
        wave_plain.num_clusters()
    );
    emit(
        scale,
        "wave",
        "plain",
        n,
        arcs,
        plain_bytes,
        wave_plain_secs,
        wave_plain_peak,
    );
    emit(
        scale,
        "wave",
        "compressed",
        n,
        arcs,
        comp_bytes,
        wave_comp_secs,
        wave_comp_peak,
    );

    // ---- phase 3: CLUSTER(τ) --------------------------------------------
    let tau = tau_for_target(n, granularity_target(n, Regime::SmallDiameter));
    let params = ClusterParams::new(tau, SEED);
    alloc::reset_peak();
    let (cl_plain, cl_plain_secs) = timed(|| cluster(&plain_repr, &params));
    let cl_plain_peak = alloc::peak_bytes();
    alloc::reset_peak();
    let (cl_comp, cl_comp_secs) = timed(|| cluster(&comp_repr, &params));
    let cl_comp_peak = alloc::peak_bytes();
    assert_eq!(
        cl_plain.clustering, cl_comp.clustering,
        "CLUSTER output diverged between backends"
    );
    eprintln!(
        "cluster: tau {tau}, {} clusters, max radius {}",
        cl_plain.clustering.num_clusters(),
        cl_plain.clustering.max_radius()
    );
    emit(
        scale,
        "cluster",
        "plain",
        n,
        arcs,
        plain_bytes,
        cl_plain_secs,
        cl_plain_peak,
    );
    emit(
        scale,
        "cluster",
        "compressed",
        n,
        arcs,
        comp_bytes,
        cl_comp_secs,
        cl_comp_peak,
    );

    // ---- summary ---------------------------------------------------------
    println!(
        "{{\"bench\":\"bench_compressed\",\"scale\":\"{:?}\",\"phase\":\"summary\",\
         \"nodes\":{},\"arcs\":{},\"compression_ratio\":{:.3},\
         \"plain_bytes_per_edge\":{:.3},\"compressed_bytes_per_edge\":{:.3},\
         \"wave_slowdown\":{:.3},\"cluster_slowdown\":{:.3},\
         \"stream_build_peak_bytes\":{},\"inmem_build_peak_bytes\":{}}}",
        scale,
        n,
        arcs,
        ratio,
        plain_bytes as f64 / (arcs / 2) as f64,
        comp_bytes as f64 / (arcs / 2) as f64,
        wave_comp_secs / wave_plain_secs.max(1e-9),
        cl_comp_secs / cl_plain_secs.max(1e-9),
        stream_peak,
        plain_peak,
    );
}
