//! **Figure 1** — running time of CLUSTER vs BFS on social graphs with a
//! chain of `c·Δ` extra nodes appended (`c ∈ {0, 1, 2, 4, 6, 8, 10}`).
//!
//! The chain inflates the diameter by `c·Δ` without altering the base
//! structure: BFS's time grows linearly in `c` (its rounds are Θ(Δ)), while
//! CLUSTER's stays flat. Emits one series row per (dataset, c); pipe to a
//! plotting tool or read the trend directly.

use pardec_bench::{
    report::{secs, Table},
    scale_from_args, timed, workloads,
};
use pardec_core::mr_impl::{mr_bfs, mr_cluster};
use pardec_core::ClusterParams;
use pardec_graph::generators::append_chain;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let scale = scale_from_args();
    println!("Figure 1: time vs appended chain length (scale {scale:?})\n");
    let mut t = Table::new([
        "dataset",
        "c",
        "extra nodes",
        "CLUSTER s",
        "BFS s",
        "C rounds",
        "B rounds",
    ]);
    for d in workloads::social_datasets(scale) {
        let base = &d.graph;
        let n = base.num_nodes();
        let delta = workloads::exact_diameter(base) as usize;
        let tau = workloads::tau_for_target(n, (n / 100).max(120));
        let attach = StdRng::seed_from_u64(5).gen_range(0..n) as u32;
        for c in [0usize, 1, 2, 4, 6, 8, 10] {
            let g = append_chain(base, attach, c * delta);
            let (cl, cluster_time) = timed(|| mr_cluster(&g, &ClusterParams::new(tau, 11)));
            let src = StdRng::seed_from_u64(11).gen_range(0..n) as u32;
            let (bf, bfs_time) = timed(|| mr_bfs(&g, src));
            t.row([
                d.name.to_string(),
                c.to_string(),
                (c * delta).to_string(),
                secs(cluster_time),
                secs(bfs_time),
                cl.supersteps.to_string(),
                bf.supersteps.to_string(),
            ]);
            eprintln!("[figure1] {} c={c} done", d.name);
        }
    }
    t.print();
    println!("\npaper shape: BFS time grows linearly with c; CLUSTER time is essentially flat.");
}
