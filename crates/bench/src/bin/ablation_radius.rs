//! **Ablation (extra)** — Lemma 1 radius shape: on the mesh (doubling
//! dimension b = 2), `R_ALG ≈ O((Δ/√τ)·log n)`; quadrupling τ should
//! roughly halve the radius. Also sweeps the algorithm's constants
//! (`batch_factor`, `stop_factor`) to show the pseudocode's 4/8 are not
//! load-bearing for quality, only for the high-probability guarantees.

use pardec_bench::{report::Table, scale_from_args, workloads};
use pardec_core::analysis::radius_tau_sweep;
use pardec_core::{cluster, ClusterParams};

fn main() {
    let scale = scale_from_args();
    let mesh = workloads::datasets(scale).pop().expect("mesh is last");
    let g = mesh.graph;
    let delta = workloads::exact_diameter(&g) as f64;
    println!(
        "Ablation: radius vs tau on {} (n = {}, Δ = {delta})\n",
        mesh.name,
        g.num_nodes()
    );

    let taus = [1usize, 4, 16, 64, 256];
    let mut t = Table::new(["tau", "clusters", "R_ALG", "R·√tau/Δ", "growth steps"]);
    for p in radius_tau_sweep(&g, &taus, 3) {
        let normalized = p.max_radius as f64 * (p.tau as f64).sqrt() / delta;
        t.row([
            p.tau.to_string(),
            p.clusters.to_string(),
            p.max_radius.to_string(),
            format!("{normalized:.3}"),
            p.growth_steps.to_string(),
        ]);
    }
    t.print();
    println!("\nLemma 1 shape: the R·√tau/Δ column should stay within a small constant band.");

    println!("\nConstant ablation (tau = 16):");
    let mut t2 = Table::new(["batch_factor", "stop_factor", "clusters", "R_ALG"]);
    for (bf, sf) in [(1.0, 8.0), (4.0, 8.0), (16.0, 8.0), (4.0, 2.0), (4.0, 32.0)] {
        let mut params = ClusterParams::new(16, 5);
        params.batch_factor = bf;
        params.stop_factor = sf;
        let r = cluster(&g, &params);
        t2.row([
            format!("{bf}"),
            format!("{sf}"),
            r.clustering.num_clusters().to_string(),
            r.clustering.max_radius().to_string(),
        ]);
    }
    t2.print();
}
