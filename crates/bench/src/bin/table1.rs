//! **Table 1** — characteristics of the benchmark graphs
//! (paper: nodes / edges / diameter for twitter, livejournal, roads-CA/PA/TX,
//! mesh1000; here: their synthetic substitutes, see DESIGN.md §2).

use pardec_bench::{report::Table, scale_from_args, timed, workloads};

fn main() {
    let scale = scale_from_args();
    println!("Table 1: dataset characteristics (scale {scale:?})\n");
    let mut t = Table::new(["dataset", "(stands in for)", "nodes", "edges", "diameter"]);
    for d in workloads::datasets(scale) {
        let (delta, secs) = timed(|| workloads::exact_diameter(&d.graph));
        eprintln!("[table1] {}: exact diameter in {secs:.2}s", d.name);
        t.row([
            d.name.to_string(),
            d.paper_name.to_string(),
            d.graph.num_nodes().to_string(),
            d.graph.num_edges().to_string(),
            delta.to_string(),
        ]);
    }
    t.print();
    println!("\npaper (original datasets): twitter 39.8M/684M/16, livejournal 4.0M/34.7M/21,");
    println!("roads-CA 1.97M/2.77M/849, roads-PA 1.09M/1.54M/786, roads-TX 1.38M/1.92M/1054,");
    println!("mesh1000 1.0M/2.0M/1998");
}
