//! **serve load generator** — drives the `pardec serve` wire protocol and
//! reports throughput and tail latency as JSONL (one object per
//! thread-count × operation leg), ready for CI artifact upload.
//!
//! Two modes:
//!
//! * **In-process** (default): builds a session over a mesh, starts the
//!   [`pardec_core::wire`] server twice — worker pools of 1 and 4 threads —
//!   runs the identical query schedule against both, and asserts every
//!   response is byte-identical across pool sizes (the workspace-wide
//!   determinism contract, now over TCP). Also asserts the `NEAREST` batch
//!   ledger reports exactly one frontier wave for the whole batch.
//! * **External** (`--addr HOST:PORT`): aims the same schedule at an
//!   already-running `pardec serve` daemon; `--shutdown` sends `OP_SHUTDOWN`
//!   afterwards. This is the CI smoke leg.
//!
//! Options: `--smoke` (tiny workload, seconds not minutes), `--batches N`,
//! `--batch N` (queries per request frame), `--seed S`.

use pardec_bench::timed;
use pardec_core::{wire, Session, SessionParams};
use pardec_graph::{generators, FrontierStrategy, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::io;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Instant;

struct Config {
    addr: Option<String>,
    shutdown: bool,
    smoke: bool,
    batches: usize,
    batch: usize,
    seed: u64,
}

fn parse_args() -> Config {
    let mut cfg = Config {
        addr: None,
        shutdown: false,
        smoke: false,
        batches: 0,
        batch: 256,
        seed: 42,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--addr" => cfg.addr = Some(it.next().expect("--addr expects HOST:PORT")),
            "--shutdown" => cfg.shutdown = true,
            "--smoke" => cfg.smoke = true,
            "--batches" => {
                cfg.batches = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--batches expects a count")
            }
            "--batch" => {
                cfg.batch = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--batch expects a count")
            }
            "--seed" => {
                cfg.seed = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--seed expects an integer")
            }
            other => panic!("unknown option {other} (see the module docs)"),
        }
    }
    if cfg.batches == 0 {
        cfg.batches = if cfg.smoke { 8 } else { 64 };
    }
    cfg
}

/// One pre-encoded request frame plus the op label it reports under.
struct Shot {
    op: &'static str,
    frame: Vec<u8>,
}

/// The deterministic query schedule: `batches` frames per operation, each
/// carrying `batch` queries drawn from a seeded RNG. Identical inputs across
/// server configurations by construction.
fn schedule(n: usize, cfg: &Config) -> Vec<Shot> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let node = |rng: &mut StdRng| rng.gen_range(0..n) as NodeId;
    let mut shots = Vec::new();
    for _ in 0..cfg.batches {
        let pairs: Vec<(NodeId, NodeId)> = (0..cfg.batch)
            .map(|_| (node(&mut rng), node(&mut rng)))
            .collect();
        shots.push(Shot {
            op: "dist",
            frame: wire::encode_request(&wire::Request::Distance(pairs)),
        });
        let nodes: Vec<NodeId> = (0..cfg.batch).map(|_| node(&mut rng)).collect();
        shots.push(Shot {
            op: "cluster_of",
            frame: wire::encode_request(&wire::Request::ClusterOf(nodes)),
        });
        let nodes: Vec<NodeId> = (0..cfg.batch).map(|_| node(&mut rng)).collect();
        shots.push(Shot {
            op: "ecc",
            frame: wire::encode_request(&wire::Request::Eccentricity(nodes)),
        });
        // The tentpole shape: a whole batch of nearest-source queries
        // answered by ONE multi-source frontier wave.
        let sources: Vec<NodeId> = (0..16).map(|_| node(&mut rng)).collect();
        let probes: Vec<NodeId> = (0..cfg.batch).map(|_| node(&mut rng)).collect();
        shots.push(Shot {
            op: "nearest",
            frame: wire::encode_request(&wire::Request::Nearest { sources, probes }),
        });
    }
    shots
}

/// Per-operation latency samples plus every raw response body, in schedule
/// order (the identity assertion compares these across pool sizes).
struct RunResult {
    /// `(op, micros)` per request, in schedule order.
    lat: Vec<(&'static str, u64)>,
    bodies: Vec<Vec<u8>>,
    secs: f64,
}

fn run_schedule(addr: &str, shots: &[Shot]) -> io::Result<RunResult> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true).ok();
    let mut lat = Vec::with_capacity(shots.len());
    let mut bodies = Vec::with_capacity(shots.len());
    let start = Instant::now();
    for shot in shots {
        let t = Instant::now();
        wire::write_frame(&mut stream, &shot.frame)?;
        let body = wire::read_frame(&mut stream)?
            .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "server closed"))?;
        lat.push((shot.op, t.elapsed().as_micros() as u64));
        let resp = wire::decode_response(&body)?;
        if resp.status != 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "server error {} on {}: {}",
                    resp.status,
                    shot.op,
                    resp.error_message().unwrap_or_default()
                ),
            ));
        }
        if shot.op == "nearest" && resp.waves != 1 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("NEAREST batch ran {} waves, expected 1", resp.waves),
            ));
        }
        bodies.push(body);
    }
    Ok(RunResult {
        lat,
        bodies,
        secs: start.elapsed().as_secs_f64(),
    })
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * p / 100.0).round() as usize;
    sorted[idx]
}

/// Emits one JSONL record per operation for a finished run.
fn report(threads: &str, batch: usize, result: &RunResult) {
    let total: usize = result.lat.len();
    let qps = total as f64 / result.secs;
    println!(
        "{{\"bench\":\"serve\",\"threads\":\"{threads}\",\"batch\":{batch},\
         \"requests\":{total},\"secs\":{:.4},\"qps\":{qps:.1},\
         \"peak_alloc_bytes\":{}}}",
        result.secs,
        pardec_bench::alloc::peak_bytes(),
    );
    for op in ["dist", "cluster_of", "ecc", "nearest"] {
        let mut samples: Vec<u64> = result
            .lat
            .iter()
            .filter(|(o, _)| *o == op)
            .map(|&(_, us)| us)
            .collect();
        if samples.is_empty() {
            continue;
        }
        samples.sort_unstable();
        println!(
            "{{\"bench\":\"serve\",\"threads\":\"{threads}\",\"op\":\"{op}\",\
             \"batch\":{batch},\"requests\":{},\"p50_us\":{},\"p99_us\":{}}}",
            samples.len(),
            percentile(&samples, 50.0),
            percentile(&samples, 99.0),
        );
    }
}

fn send_shutdown(addr: &str) -> io::Result<()> {
    let mut stream = TcpStream::connect(addr)?;
    wire::roundtrip(&mut stream, &wire::Request::Shutdown)?;
    Ok(())
}

/// Queries the daemon's `OP_STATS` surface. The snapshot excludes the STATS
/// frame itself (the server snapshots before recording it), so
/// `total_requests` is exactly the number of previously answered frames.
fn query_stats(addr: &str) -> io::Result<wire::StatsSnapshot> {
    let mut stream = TcpStream::connect(addr)?;
    let resp = wire::roundtrip(&mut stream, &wire::Request::Stats)?;
    if resp.status != 0 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "STATS error {}: {}",
                resp.status,
                resp.error_message().unwrap_or_default()
            ),
        ));
    }
    wire::decode_stats_body(&resp.body)
}

/// Emits the server-side ledger as one JSONL record and cross-checks it
/// against the client-side request count. `exact` demands equality (a
/// dedicated in-process daemon); external daemons may have served other
/// clients first, so there the server count only has to cover ours.
fn report_stats(threads: &str, stats: &wire::StatsSnapshot, client_requests: u64, exact: bool) {
    if exact {
        assert_eq!(
            stats.total_requests, client_requests,
            "server saw {} requests, client sent {client_requests}",
            stats.total_requests
        );
        assert_eq!(stats.errors, 0, "server recorded errors: {stats:?}");
    } else {
        assert!(
            stats.total_requests >= client_requests,
            "server saw {} requests, client alone sent {client_requests}",
            stats.total_requests
        );
    }
    let per_op: Vec<String> = stats
        .per_op
        .iter()
        .map(|op| {
            format!(
                "{{\"opcode\":{},\"count\":{},\"p50_us\":{},\"p99_us\":{}}}",
                op.opcode,
                op.count,
                op.latency.percentile(50),
                op.latency.percentile(99),
            )
        })
        .collect();
    println!(
        "{{\"bench\":\"serve\",\"threads\":\"{threads}\",\"op\":\"stats\",\
         \"requests\":{},\"errors\":{},\"bytes_in\":{},\"bytes_out\":{},\
         \"uptime_us\":{},\"per_op\":[{}]}}",
        stats.total_requests,
        stats.errors,
        stats.bytes_in,
        stats.bytes_out,
        stats.uptime_us,
        per_op.join(","),
    );
}

fn main() {
    let cfg = parse_args();

    if let Some(addr) = cfg.addr.clone() {
        // External mode: the daemon already exists; probe it, run, report.
        let mut stream = TcpStream::connect(&addr).expect("cannot connect");
        let info = wire::roundtrip(&mut stream, &wire::Request::Info).expect("INFO failed");
        let mut body: &[u8] = &info.body;
        let n = {
            use bytes_shim_read::read_u64;
            read_u64(&mut body) as usize
        };
        drop(stream);
        eprintln!("[bench_serve] external daemon at {addr}: {n} nodes");
        let shots = schedule(n, &cfg);
        let result = run_schedule(&addr, &shots).expect("run failed");
        report("external", cfg.batch, &result);
        // The INFO probe plus every schedule frame must show up server-side.
        let stats = query_stats(&addr).expect("STATS failed");
        report_stats("external", &stats, 1 + shots.len() as u64, false);
        if cfg.shutdown {
            send_shutdown(&addr).expect("shutdown failed");
            eprintln!("[bench_serve] daemon shut down");
        }
        return;
    }

    // In-process mode: one resident session, two pool sizes, identical bytes.
    let (rows, cols, tau) = if cfg.smoke {
        (48, 48, 6)
    } else {
        (240, 240, 12)
    };
    let g = generators::mesh(rows, cols);
    let n = g.num_nodes();
    eprintln!("[bench_serve] mesh {rows}x{cols}: {n} nodes, building session (tau {tau})");
    let (session, build_secs) = timed(|| {
        Session::build(
            g,
            &SessionParams::new(tau, cfg.seed).with_frontier(FrontierStrategy::TopDown),
        )
    });
    eprintln!(
        "[bench_serve] session: {} clusters, oracle {} words, built in {:.2}s",
        session.clustering().num_clusters(),
        session.oracle().map_or(0, |o| o.memory_words()),
        build_secs
    );
    let session = Arc::new(session);
    let shots = schedule(n, &cfg);

    let mut runs: Vec<(usize, RunResult)> = Vec::new();
    for threads in [1usize, 4] {
        let pool = Arc::new(
            rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .expect("pool"),
        );
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
        let handle = wire::serve(listener, session.clone(), pool, 2).expect("serve");
        let addr = handle.addr().to_string();
        let result = run_schedule(&addr, &shots).expect("run failed");
        report(&threads.to_string(), cfg.batch, &result);
        // Server-side ledger must agree exactly with the schedule we sent.
        // STATS responses carry timings, so they are queried after the
        // compared schedule and never enter the byte-identity bodies below.
        let stats = query_stats(&addr).expect("STATS failed");
        report_stats(&threads.to_string(), &stats, shots.len() as u64, true);
        send_shutdown(&addr).expect("shutdown failed");
        handle.join();
        runs.push((threads, result));
    }

    // Determinism contract: byte-identical responses at every pool size.
    let (base_threads, base) = &runs[0];
    for (threads, run) in &runs[1..] {
        assert_eq!(
            base.bodies.len(),
            run.bodies.len(),
            "response count differs between {base_threads} and {threads} threads"
        );
        for (i, (a, b)) in base.bodies.iter().zip(&run.bodies).enumerate() {
            assert_eq!(
                a, b,
                "response {i} ({}) differs between {base_threads} and {threads} threads",
                shots[i].op
            );
        }
    }
    println!(
        "{{\"bench\":\"serve\",\"identity\":\"ok\",\"configs\":[{}],\"responses\":{}}}",
        runs.iter()
            .map(|(t, _)| t.to_string())
            .collect::<Vec<_>>()
            .join(","),
        runs[0].1.bodies.len()
    );
}

/// Tiny local reader for the INFO body (avoids depending on the bytes shim
/// from a binary that only needs one field).
mod bytes_shim_read {
    pub fn read_u64(buf: &mut &[u8]) -> u64 {
        let (head, rest) = buf.split_at(8);
        *buf = rest;
        u64::from_le_bytes(head.try_into().unwrap())
    }
}
