//! **serve load generator** — drives the `pardec serve` wire protocol and
//! reports throughput and tail latency as JSONL (one object per
//! thread-count × operation leg), ready for CI artifact upload.
//!
//! Two modes:
//!
//! * **In-process** (default): builds a session over a mesh, starts the
//!   [`pardec_core::wire`] server twice — worker pools of 1 and 4 threads —
//!   runs the identical query schedule against both, and asserts every
//!   response is byte-identical across pool sizes (the workspace-wide
//!   determinism contract, now over TCP). Also asserts the `NEAREST` batch
//!   ledger reports exactly one frontier wave for the whole batch.
//! * **External** (`--addr HOST:PORT`): aims the same schedule at an
//!   already-running `pardec serve` daemon; `--shutdown` sends `OP_SHUTDOWN`
//!   afterwards. This is the CI smoke leg.
//!
//! Options: `--smoke` (tiny workload, seconds not minutes), `--batches N`,
//! `--batch N` (queries per request frame), `--seed S`, `--reload PATH`
//! (external mode only: send `OP_RELOAD` for PATH before the INFO probe —
//! the daemon must run with `--allow-reload`).
//!
//! The client is overload-aware: `ERR_OVERLOADED` responses honor the
//! server's `retry_after_ms` hint and transient socket failures reconnect
//! under bounded exponential backoff with seeded jitter. Every retry and
//! shed response is counted and reported in the JSONL summary
//! (`"retries"`, `"shed_requests"`), so a lossy run is visible, never
//! silent.

use pardec_bench::timed;
use pardec_core::{wire, Session, SessionParams};
use pardec_graph::{generators, FrontierStrategy, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::io;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Instant;

struct Config {
    addr: Option<String>,
    shutdown: bool,
    smoke: bool,
    batches: usize,
    batch: usize,
    seed: u64,
    reload: Option<String>,
}

fn parse_args() -> Config {
    let mut cfg = Config {
        addr: None,
        shutdown: false,
        smoke: false,
        batches: 0,
        batch: 256,
        seed: 42,
        reload: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--addr" => cfg.addr = Some(it.next().expect("--addr expects HOST:PORT")),
            "--reload" => cfg.reload = Some(it.next().expect("--reload expects a snapshot path")),
            "--shutdown" => cfg.shutdown = true,
            "--smoke" => cfg.smoke = true,
            "--batches" => {
                cfg.batches = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--batches expects a count")
            }
            "--batch" => {
                cfg.batch = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--batch expects a count")
            }
            "--seed" => {
                cfg.seed = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--seed expects an integer")
            }
            other => panic!("unknown option {other} (see the module docs)"),
        }
    }
    if cfg.batches == 0 {
        cfg.batches = if cfg.smoke { 8 } else { 64 };
    }
    cfg
}

/// One pre-encoded request frame plus the op label it reports under.
struct Shot {
    op: &'static str,
    frame: Vec<u8>,
}

/// The deterministic query schedule: `batches` frames per operation, each
/// carrying `batch` queries drawn from a seeded RNG. Identical inputs across
/// server configurations by construction.
fn schedule(n: usize, cfg: &Config) -> Vec<Shot> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let node = |rng: &mut StdRng| rng.gen_range(0..n) as NodeId;
    let mut shots = Vec::new();
    for _ in 0..cfg.batches {
        let pairs: Vec<(NodeId, NodeId)> = (0..cfg.batch)
            .map(|_| (node(&mut rng), node(&mut rng)))
            .collect();
        shots.push(Shot {
            op: "dist",
            frame: wire::encode_request(&wire::Request::Distance(pairs)),
        });
        let nodes: Vec<NodeId> = (0..cfg.batch).map(|_| node(&mut rng)).collect();
        shots.push(Shot {
            op: "cluster_of",
            frame: wire::encode_request(&wire::Request::ClusterOf(nodes)),
        });
        let nodes: Vec<NodeId> = (0..cfg.batch).map(|_| node(&mut rng)).collect();
        shots.push(Shot {
            op: "ecc",
            frame: wire::encode_request(&wire::Request::Eccentricity(nodes)),
        });
        // The tentpole shape: a whole batch of nearest-source queries
        // answered by ONE multi-source frontier wave.
        let sources: Vec<NodeId> = (0..16).map(|_| node(&mut rng)).collect();
        let probes: Vec<NodeId> = (0..cfg.batch).map(|_| node(&mut rng)).collect();
        shots.push(Shot {
            op: "nearest",
            frame: wire::encode_request(&wire::Request::Nearest { sources, probes }),
        });
    }
    shots
}

/// Per-operation latency samples plus every raw response body, in schedule
/// order (the identity assertion compares these across pool sizes).
struct RunResult {
    /// `(op, micros)` per request, in schedule order.
    lat: Vec<(&'static str, u64)>,
    bodies: Vec<Vec<u8>>,
    secs: f64,
    /// Frames re-sent after a shed response or a transient socket failure.
    retries: u64,
    /// `ERR_OVERLOADED` responses received (each one also retried).
    shed_requests: u64,
}

/// Retry budget per frame; beyond this the run fails loudly.
const MAX_RETRIES: u32 = 5;

/// Transient failures worth a reconnect: the hardened server closes the
/// socket on timeouts and panics, and a restarting daemon refuses briefly.
fn is_transient(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::TimedOut
            | io::ErrorKind::WouldBlock
            | io::ErrorKind::ConnectionReset
            | io::ErrorKind::ConnectionRefused
            | io::ErrorKind::ConnectionAborted
            | io::ErrorKind::BrokenPipe
            | io::ErrorKind::UnexpectedEof
    )
}

/// Exponential backoff (10ms · 2^attempt) with seeded jitter, so a shed
/// herd decorrelates while staying reproducible under one seed.
fn backoff_ms(attempt: u32, rng: &mut StdRng) -> u64 {
    let base = 10u64 << attempt.min(6);
    base + rng.gen_range(0..base / 2 + 1)
}

fn connect(addr: &str) -> io::Result<TcpStream> {
    let stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true).ok();
    Ok(stream)
}

fn roundtrip_frame(stream: &mut TcpStream, frame: &[u8]) -> io::Result<Vec<u8>> {
    wire::write_frame(stream, frame)?;
    wire::read_frame(stream)?
        .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "server closed"))
}

fn run_schedule(addr: &str, shots: &[Shot], seed: u64) -> io::Result<RunResult> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9E37_79B9_7F4A_7C15);
    let mut stream = connect(addr)?;
    let mut lat = Vec::with_capacity(shots.len());
    let mut bodies = Vec::with_capacity(shots.len());
    let mut retries = 0u64;
    let mut shed_requests = 0u64;
    let start = Instant::now();
    for shot in shots {
        let t = Instant::now();
        let mut attempt = 0u32;
        let body = loop {
            match roundtrip_frame(&mut stream, &shot.frame) {
                Ok(body) => {
                    let status = wire::decode_response(&body)?.status;
                    if status != wire::ERR_OVERLOADED {
                        break body;
                    }
                    // Shed: honor the server's retry hint (plus jitter so
                    // concurrent clients don't re-collide), then re-send.
                    shed_requests += 1;
                    if attempt >= MAX_RETRIES {
                        return Err(io::Error::new(
                            io::ErrorKind::InvalidData,
                            format!("{}: still overloaded after {MAX_RETRIES} retries", shot.op),
                        ));
                    }
                    let resp = wire::decode_response(&body)?;
                    let hint = resp
                        .body
                        .get(..4)
                        .map(|b| u32::from_le_bytes(b.try_into().unwrap()) as u64)
                        .unwrap_or(0);
                    std::thread::sleep(std::time::Duration::from_millis(
                        hint.max(backoff_ms(attempt, &mut rng)),
                    ));
                }
                Err(e) if is_transient(&e) && attempt < MAX_RETRIES => {
                    // The server closes timed-out / panicked connections;
                    // back off, reconnect, and re-send this frame.
                    std::thread::sleep(std::time::Duration::from_millis(backoff_ms(
                        attempt, &mut rng,
                    )));
                    stream = connect(addr)?;
                }
                Err(e) => return Err(e),
            }
            attempt += 1;
            retries += 1;
        };
        lat.push((shot.op, t.elapsed().as_micros() as u64));
        let resp = wire::decode_response(&body)?;
        if resp.status != 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "server error {} on {}: {}",
                    resp.status,
                    shot.op,
                    resp.error_message().unwrap_or_default()
                ),
            ));
        }
        if shot.op == "nearest" && resp.waves != 1 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("NEAREST batch ran {} waves, expected 1", resp.waves),
            ));
        }
        bodies.push(body);
    }
    Ok(RunResult {
        lat,
        bodies,
        secs: start.elapsed().as_secs_f64(),
        retries,
        shed_requests,
    })
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * p / 100.0).round() as usize;
    sorted[idx]
}

/// Emits one JSONL record per operation for a finished run.
fn report(threads: &str, batch: usize, result: &RunResult) {
    let total: usize = result.lat.len();
    let qps = total as f64 / result.secs;
    println!(
        "{{\"bench\":\"serve\",\"threads\":\"{threads}\",\"batch\":{batch},\
         \"requests\":{total},\"secs\":{:.4},\"qps\":{qps:.1},\
         \"retries\":{},\"shed_requests\":{},\"peak_alloc_bytes\":{}}}",
        result.secs,
        result.retries,
        result.shed_requests,
        pardec_bench::alloc::peak_bytes(),
    );
    for op in ["dist", "cluster_of", "ecc", "nearest"] {
        let mut samples: Vec<u64> = result
            .lat
            .iter()
            .filter(|(o, _)| *o == op)
            .map(|&(_, us)| us)
            .collect();
        if samples.is_empty() {
            continue;
        }
        samples.sort_unstable();
        println!(
            "{{\"bench\":\"serve\",\"threads\":\"{threads}\",\"op\":\"{op}\",\
             \"batch\":{batch},\"requests\":{},\"p50_us\":{},\"p99_us\":{}}}",
            samples.len(),
            percentile(&samples, 50.0),
            percentile(&samples, 99.0),
        );
    }
}

fn send_shutdown(addr: &str) -> io::Result<()> {
    let mut stream = TcpStream::connect(addr)?;
    wire::roundtrip(&mut stream, &wire::Request::Shutdown)?;
    Ok(())
}

/// Queries the daemon's `OP_STATS` surface. The snapshot excludes the STATS
/// frame itself (the server snapshots before recording it), so
/// `total_requests` is exactly the number of previously answered frames.
fn query_stats(addr: &str) -> io::Result<wire::StatsSnapshot> {
    let mut stream = TcpStream::connect(addr)?;
    let resp = wire::roundtrip(&mut stream, &wire::Request::Stats)?;
    if resp.status != 0 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "STATS error {}: {}",
                resp.status,
                resp.error_message().unwrap_or_default()
            ),
        ));
    }
    wire::decode_stats_body(&resp.body)
}

/// Emits the server-side ledger as one JSONL record and cross-checks it
/// against the client-side request count. `exact` demands equality (a
/// dedicated in-process daemon — the count includes re-sent frames, and
/// every server-side error must be an accounted shed); external daemons may
/// have served other clients first, so there the server count only has to
/// cover ours.
fn report_stats(threads: &str, stats: &wire::StatsSnapshot, client_requests: u64, exact: bool) {
    if exact {
        assert_eq!(
            stats.total_requests, client_requests,
            "server saw {} requests, client sent {client_requests}",
            stats.total_requests
        );
        assert_eq!(
            stats.errors, stats.shed,
            "server recorded non-shed errors: {stats:?}"
        );
    } else {
        assert!(
            stats.total_requests >= client_requests,
            "server saw {} requests, client alone sent {client_requests}",
            stats.total_requests
        );
    }
    let per_op: Vec<String> = stats
        .per_op
        .iter()
        .map(|op| {
            format!(
                "{{\"opcode\":{},\"count\":{},\"p50_us\":{},\"p99_us\":{}}}",
                op.opcode,
                op.count,
                op.latency.percentile(50),
                op.latency.percentile(99),
            )
        })
        .collect();
    println!(
        "{{\"bench\":\"serve\",\"threads\":\"{threads}\",\"op\":\"stats\",\
         \"requests\":{},\"errors\":{},\"bytes_in\":{},\"bytes_out\":{},\
         \"uptime_us\":{},\"epoch\":{},\"timeouts\":{},\"shed\":{},\
         \"panics_caught\":{},\"reloads_ok\":{},\"reloads_rolled_back\":{},\
         \"per_op\":[{}]}}",
        stats.total_requests,
        stats.errors,
        stats.bytes_in,
        stats.bytes_out,
        stats.uptime_us,
        stats.epoch,
        stats.timeouts,
        stats.shed,
        stats.panics_caught,
        stats.reloads_ok,
        stats.reloads_rolled_back,
        per_op.join(","),
    );
}

fn main() {
    let cfg = parse_args();

    if let Some(addr) = cfg.addr.clone() {
        // External mode: the daemon already exists; probe it, run, report.
        let mut stream = TcpStream::connect(&addr).expect("cannot connect");
        let mut extra_requests = 0u64;
        if let Some(path) = &cfg.reload {
            // Hot-reload BEFORE the INFO probe so the whole schedule runs
            // against the fresh epoch (daemon needs --allow-reload).
            let resp = wire::roundtrip(&mut stream, &wire::Request::Reload { path: path.clone() })
                .expect("RELOAD roundtrip failed");
            assert_eq!(
                resp.status,
                0,
                "RELOAD {path} refused: {}",
                resp.error_message().unwrap_or_default()
            );
            let epoch = u64::from_le_bytes(resp.body[..8].try_into().unwrap());
            eprintln!("[bench_serve] reloaded {path}: epoch {epoch}");
            extra_requests += 1;
        }
        let info = wire::roundtrip(&mut stream, &wire::Request::Info).expect("INFO failed");
        let mut body: &[u8] = &info.body;
        let n = {
            use bytes_shim_read::read_u64;
            read_u64(&mut body) as usize
        };
        drop(stream);
        eprintln!("[bench_serve] external daemon at {addr}: {n} nodes");
        let shots = schedule(n, &cfg);
        let result = run_schedule(&addr, &shots, cfg.seed).expect("run failed");
        report("external", cfg.batch, &result);
        // The INFO probe plus every schedule frame must show up server-side.
        let stats = query_stats(&addr).expect("STATS failed");
        report_stats(
            "external",
            &stats,
            1 + extra_requests + shots.len() as u64 + result.retries,
            false,
        );
        if cfg.shutdown {
            send_shutdown(&addr).expect("shutdown failed");
            eprintln!("[bench_serve] daemon shut down");
        }
        return;
    }

    // In-process mode: one resident session, two pool sizes, identical bytes.
    let (rows, cols, tau) = if cfg.smoke {
        (48, 48, 6)
    } else {
        (240, 240, 12)
    };
    let g = generators::mesh(rows, cols);
    let n = g.num_nodes();
    eprintln!("[bench_serve] mesh {rows}x{cols}: {n} nodes, building session (tau {tau})");
    let (session, build_secs) = timed(|| {
        Session::build(
            g,
            &SessionParams::new(tau, cfg.seed).with_frontier(FrontierStrategy::TopDown),
        )
    });
    eprintln!(
        "[bench_serve] session: {} clusters, oracle {} words, built in {:.2}s",
        session.clustering().num_clusters(),
        session.oracle().map_or(0, |o| o.memory_words()),
        build_secs
    );
    let session = Arc::new(session);
    let shots = schedule(n, &cfg);

    let mut runs: Vec<(usize, RunResult)> = Vec::new();
    for threads in [1usize, 4] {
        let pool = Arc::new(
            rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .expect("pool"),
        );
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
        let handle = wire::serve(listener, session.clone(), pool, 2).expect("serve");
        let addr = handle.addr().to_string();
        let result = run_schedule(&addr, &shots, cfg.seed).expect("run failed");
        report(&threads.to_string(), cfg.batch, &result);
        // Server-side ledger must agree exactly with the schedule we sent
        // (plus any retried frames — the default config never sheds, so in
        // practice retries stay 0 here). STATS responses carry timings, so
        // they are queried after the compared schedule and never enter the
        // byte-identity bodies below.
        let stats = query_stats(&addr).expect("STATS failed");
        report_stats(
            &threads.to_string(),
            &stats,
            shots.len() as u64 + result.retries,
            true,
        );
        send_shutdown(&addr).expect("shutdown failed");
        handle.join();
        runs.push((threads, result));
    }

    // Determinism contract: byte-identical responses at every pool size.
    let (base_threads, base) = &runs[0];
    for (threads, run) in &runs[1..] {
        assert_eq!(
            base.bodies.len(),
            run.bodies.len(),
            "response count differs between {base_threads} and {threads} threads"
        );
        for (i, (a, b)) in base.bodies.iter().zip(&run.bodies).enumerate() {
            assert_eq!(
                a, b,
                "response {i} ({}) differs between {base_threads} and {threads} threads",
                shots[i].op
            );
        }
    }
    println!(
        "{{\"bench\":\"serve\",\"identity\":\"ok\",\"configs\":[{}],\"responses\":{}}}",
        runs.iter()
            .map(|(t, _)| t.to_string())
            .collect::<Vec<_>>()
            .join(","),
        runs[0].1.bodies.len()
    );
}

/// Tiny local reader for the INFO body (avoids depending on the bytes shim
/// from a binary that only needs one field).
mod bytes_shim_read {
    pub fn read_u64(buf: &mut &[u8]) -> u64 {
        let (head, rest) = buf.split_at(8);
        *buf = rest;
        u64::from_le_bytes(head.try_into().unwrap())
    }
}
