//! # pardec-bench — experiment harness
//!
//! Regenerates every table and figure of the paper's evaluation (§6) on the
//! synthetic dataset substitutes described in DESIGN.md §2:
//!
//! | binary | paper artifact |
//! |---|---|
//! | `table1` | Table 1 — dataset characteristics |
//! | `table2` | Table 2 — CLUSTER vs MPX decomposition quality |
//! | `table3` | Table 3 — diameter approximation at two granularities |
//! | `table4` | Table 4 — time/estimate vs BFS and HADI (MR emulation) |
//! | `figure1` | Figure 1 — CLUSTER/BFS time vs appended chain length |
//! | `ablation_radius` | extra — Lemma 1 radius-vs-τ shape |
//! | `mr_accounting` | extra — §5 round/communication ledger (JSONL) |
//! | `bench_serve` | extra — serve-daemon load generator (JSONL) |
//! | `bench_compressed` | extra — gap-coded vs plain CSR backend (JSONL) |
//! | `trace_check` | extra — validates `--trace` JSONL artifacts |
//!
//! Every binary accepts `--scale {ci,default,full}` (or the `PARDEC_SCALE`
//! environment variable); `ci` keeps the full suite within a couple of
//! minutes, `full` reproduces the paper's mesh at 1000×1000.

pub mod alloc;
pub mod report;
pub mod workloads;

use std::time::Instant;

/// Bench binaries link this crate, so registering here gives every bench
/// process heap accounting without touching the library crates. Gated by
/// the default-on `count-alloc` feature (`--no-default-features` restores
/// the plain system allocator).
#[cfg(feature = "count-alloc")]
#[global_allocator]
static GLOBAL_COUNTING_ALLOC: alloc::CountingAlloc = alloc::CountingAlloc;

/// Wall-clock timing of a closure, returning `(result, seconds)`.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64())
}

/// Parses `--scale` from argv (or `PARDEC_SCALE`), defaulting to `Default`.
pub fn scale_from_args() -> workloads::Scale {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--scale" {
            if let Some(v) = args.next() {
                return workloads::Scale::parse(&v);
            }
        } else if let Some(v) = a.strip_prefix("--scale=") {
            return workloads::Scale::parse(v);
        }
    }
    if let Ok(v) = std::env::var("PARDEC_SCALE") {
        return workloads::Scale::parse(&v);
    }
    workloads::Scale::Default
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timed_returns_result() {
        let (v, secs) = timed(|| 41 + 1);
        assert_eq!(v, 42);
        assert!(secs >= 0.0);
    }
}
