//! Minimal aligned-table printer for the experiment binaries.

/// Accumulates rows of strings and prints them column-aligned, in the style
/// of the paper's tables.
#[derive(Clone, Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given column headers.
    pub fn new<S: Into<String>>(header: impl IntoIterator<Item = S>) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header width).
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.header.len(), "row width mismatch");
        self.rows.push(row);
    }

    /// Renders with every column padded to its widest cell.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut width = vec![0usize; cols];
        for c in 0..cols {
            width[c] = self.header[c].len();
            for r in &self.rows {
                width[c] = width[c].max(r[c].len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], width: &[usize]| -> String {
            let mut line = String::new();
            for (c, cell) in cells.iter().enumerate() {
                if c > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{cell:>w$}", w = width[c]));
            }
            line
        };
        out.push_str(&fmt_row(&self.header, &width));
        out.push('\n');
        let total: usize = width.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for r in &self.rows {
            out.push_str(&fmt_row(r, &width));
            out.push('\n');
        }
        out
    }

    /// Prints to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Formats a float with 3 significant decimals (timings).
pub fn secs(t: f64) -> String {
    format!("{t:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(["name", "value"]);
        t.row(["a", "1"]);
        t.row(["long-name", "12345"]);
        let r = t.render();
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[3].ends_with("12345"));
        // All data lines share the same width.
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_ragged_rows() {
        let mut t = Table::new(["a", "b"]);
        t.row(["only-one"]);
    }

    #[test]
    fn secs_format() {
        assert_eq!(secs(1.23456), "1.235");
    }
}
