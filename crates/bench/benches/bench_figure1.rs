//! Criterion bench: the Figure 1 contrast — MR CLUSTER vs MR BFS on a
//! social graph with and without a long appended chain. BFS cost should
//! scale with the chain; CLUSTER's should not.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pardec_core::mr_impl::{mr_bfs, mr_cluster};
use pardec_core::ClusterParams;
use pardec_graph::diameter::ifub;
use pardec_graph::generators::{append_chain, preferential_attachment};

fn bench_figure1(c: &mut Criterion) {
    let base = preferential_attachment(10_000, 6, 101);
    let delta = ifub(&base, 0).0 as usize;
    let tau = 2;
    let mut group = c.benchmark_group("figure1");
    for cmul in [0usize, 8] {
        let g = append_chain(&base, 0, cmul * delta);
        group.bench_with_input(BenchmarkId::new("cluster", cmul), &g, |b, g| {
            b.iter(|| mr_cluster(g, &ClusterParams::new(tau, 11)))
        });
        group.bench_with_input(BenchmarkId::new("bfs", cmul), &g, |b, g| {
            b.iter(|| mr_bfs(g, 1))
        });
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(3))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_figure1
}
criterion_main!(benches);
