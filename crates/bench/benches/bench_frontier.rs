//! Frontier-strategy bench: the same multi-source BFS workload expanded
//! top-down, bottom-up, and hybrid, on explicit pools of 1, 2, and 4
//! workers, one JSON line per (workload, strategy, threads) configuration.
//!
//! ```text
//! cargo bench -p pardec-bench --bench bench_frontier
//! ```
//!
//! Scale with `--scale {ci,default,full}` or `PARDEC_SCALE`, like the table
//! binaries. The three workloads cover the paper's regimes: a mesh
//! (large diameter, slow-growing fronts), a windowed preferential-attachment
//! power-law graph (small diameter — the saturation levels touch most arcs,
//! which is where bottom-up pulls ahead), and a road network (in between).
//! Every configuration's output is asserted byte-identical to the top-down
//! reference before its timing is reported — the bench doubles as an
//! end-to-end equivalence check.

use pardec_bench::workloads::Scale;
use pardec_bench::{scale_from_args, timed};
use pardec_graph::frontier::{multi_source_bfs, FrontierStrategy};
use pardec_graph::{generators, CsrGraph, NodeId};

const THREAD_CONFIGS: [usize; 3] = [1, 2, 4];
const NUM_SOURCES: usize = 64;
const SEED: u64 = 7;

fn workloads(scale: Scale) -> Vec<(&'static str, CsrGraph)> {
    let (mesh_side, pl_nodes, road_side) = match scale {
        Scale::Ci => (170, 40_000, 130),
        Scale::Default => (350, 160_000, 260),
        Scale::Full => (700, 600_000, 500),
    };
    vec![
        ("mesh", generators::mesh(mesh_side, mesh_side)),
        (
            "powerlaw",
            generators::windowed_preferential_attachment(pl_nodes, 8, 0.025, SEED),
        ),
        (
            "road",
            generators::road_network(road_side, road_side, 0.4, SEED),
        ),
    ]
}

/// Evenly spread source set — a CLUSTER-batch-like wave start.
fn sources(n: usize) -> Vec<NodeId> {
    let k = NUM_SOURCES.min(n);
    (0..k).map(|i| (i * (n / k)) as NodeId).collect()
}

fn main() {
    let scale = scale_from_args();
    for (workload, g) in workloads(scale) {
        let srcs = sources(g.num_nodes());
        for threads in THREAD_CONFIGS {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .expect("pool construction cannot fail");
            let mut reference = None;
            let mut topdown_seconds = None;
            for strategy in FrontierStrategy::ALL {
                // One warm-up, then best-of-three to damp scheduler noise.
                let _ = pool.install(|| multi_source_bfs(&g, &srcs, strategy));
                let mut best = f64::INFINITY;
                let mut result = None;
                for _ in 0..3 {
                    let (r, secs) =
                        timed(|| pool.install(|| multi_source_bfs(&g, &srcs, strategy)));
                    best = best.min(secs);
                    result = Some(r);
                }
                let (bfs, owner) = result.expect("ran at least once");
                let identical = match &reference {
                    None => {
                        reference = Some((bfs.dist.clone(), owner.clone()));
                        true
                    }
                    Some((d, o)) => *d == bfs.dist && *o == owner,
                };
                let speedup = match topdown_seconds {
                    None => {
                        topdown_seconds = Some(best);
                        1.0
                    }
                    Some(base) => base / best,
                };
                println!(
                    "{{\"bench\":\"frontier\",\"workload\":\"{}\",\"nodes\":{},\"edges\":{},\
                     \"sources\":{},\"strategy\":\"{}\",\"threads\":{},\"seconds\":{:.6},\
                     \"speedup_vs_topdown\":{:.3},\"identical_output\":{},\
                     \"peak_alloc_bytes\":{}}}",
                    workload,
                    g.num_nodes(),
                    g.num_edges(),
                    srcs.len(),
                    strategy,
                    threads,
                    best,
                    speedup,
                    identical,
                    pardec_bench::alloc::peak_bytes(),
                );
                assert!(
                    identical,
                    "{workload}/{strategy} diverged from topdown at {threads} threads"
                );
            }
        }
    }
}
