//! Criterion bench: HADI/ANF sketch propagation (Table 4's slow baseline) —
//! shared-memory variant, long- vs short-diameter inputs.

use criterion::{criterion_group, criterion_main, Criterion};
use pardec_core::{hadi, HadiParams};
use pardec_graph::generators;

fn bench_hadi(c: &mut Criterion) {
    let mut group = c.benchmark_group("hadi");
    // Long diameter: many iterations. Short diameter: few.
    let workloads = [
        ("mesh-50x50", generators::mesh(50, 50)),
        ("ba-5k", generators::preferential_attachment(5_000, 6, 101)),
    ];
    for (name, g) in &workloads {
        let mut p = HadiParams::new(11);
        p.trials = 16;
        group.bench_function(*name, |b| b.iter(|| hadi(g, &p)));
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(3))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_hadi
}
criterion_main!(benches);
