//! Contraction-kernel bench: the parallel combine kernel against the
//! seed-era sequential baselines on the §4 quotient machinery — one JSON
//! line per configuration (the `bench_frontier` format).
//!
//! ```text
//! cargo bench -p pardec-bench --bench bench_quotient
//! ```
//!
//! Scale with `--scale {ci,default,full}` or `PARDEC_SCALE`. Every
//! kernel-vs-naive comparison asserts **byte-identical** output (CSR
//! arrays, weights) before its timing is reported — the bench doubles as an
//! end-to-end equivalence check. Legs: mesh / power-law / road clusterings
//! at 1, 2, and 4 threads, for the unweighted quotient, the weighted
//! quotient, and the builder's symmetrize-dedup build; plus the weighted
//! quotient APSP diameter the seed bench tracked.

use pardec_bench::workloads::Scale;
use pardec_bench::{scale_from_args, timed};
use pardec_core::{cluster, ClusterParams};
use pardec_graph::quotient::{quotient_with_stats, weighted_quotient};
use pardec_graph::{generators, naive, CsrGraph, GraphBuilder, NodeId};

const THREAD_CONFIGS: [usize; 3] = [1, 2, 4];

/// Best-of-three wall-clock of `f` inside a pool of `threads` workers.
fn best_of_3<T: Send>(threads: usize, f: impl Fn() -> T + Sync + Send) -> (T, f64) {
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("pool construction cannot fail");
    let _ = pool.install(&f); // warm-up
    let mut best = f64::INFINITY;
    let mut result = None;
    for _ in 0..3 {
        let (r, secs) = timed(|| pool.install(&f));
        best = best.min(secs);
        result = Some(r);
    }
    (result.expect("ran at least once"), best)
}

fn legs(scale: Scale) -> Vec<(&'static str, CsrGraph)> {
    let (mesh_side, pl_nodes, road_side) = match scale {
        Scale::Ci => (120usize, 30_000usize, 60usize),
        Scale::Default => (300, 150_000, 140),
        Scale::Full => (1000, 600_000, 320),
    };
    vec![
        ("mesh", generators::mesh(mesh_side, mesh_side)),
        (
            "powerlaw",
            generators::windowed_preferential_attachment(pl_nodes, 8, 0.025, 7),
        ),
        (
            "road",
            generators::road_network(road_side, road_side, 0.4, 12),
        ),
    ]
}

fn main() {
    let scale = scale_from_args();
    for (name, g) in legs(scale) {
        let r = cluster(&g, &ClusterParams::new(8, 7));
        let cl = r.clustering;
        let k = cl.num_clusters();
        for threads in THREAD_CONFIGS {
            // Unweighted quotient: kernel dedup vs the seed-era sequential
            // sort-dedup pass.
            let (naive_q, naive_secs) =
                best_of_3(threads, || naive::quotient(&g, &cl.assignment, k));
            let ((kernel_q, stats), kernel_secs) =
                best_of_3(threads, || quotient_with_stats(&g, &cl.assignment, k));
            assert_eq!(
                kernel_q, naive_q,
                "kernel and naive quotient diverged on {name} at {threads} threads"
            );
            println!(
                "{{\"bench\":\"quotient\",\"case\":\"unweighted\",\"graph\":\"{}\",\
                 \"nodes\":{},\"edges\":{},\"clusters\":{},\"cut_arcs\":{},\
                 \"quotient_arcs\":{},\"combine_ratio\":{:.3},\"threads\":{},\
                 \"seconds_naive\":{:.6},\"seconds_kernel\":{:.6},\
                 \"speedup_kernel_vs_naive\":{:.3},\
                 \"peak_alloc_bytes\":{}}}",
                name,
                g.num_nodes(),
                g.num_edges(),
                k,
                stats.input_pairs,
                stats.output_pairs,
                stats.combine_ratio(),
                threads,
                naive_secs,
                kernel_secs,
                naive_secs / kernel_secs,
                pardec_bench::alloc::peak_bytes(),
            );

            // Weighted quotient: kernel min-combine vs the HashMap pass.
            let (naive_wq, naive_secs) = best_of_3(threads, || {
                naive::weighted_quotient(&g, &cl.assignment, &cl.dist_to_center, k)
            });
            let (kernel_wq, kernel_secs) = best_of_3(threads, || {
                weighted_quotient(&g, &cl.assignment, &cl.dist_to_center, k)
            });
            assert_eq!(
                kernel_wq, naive_wq,
                "kernel and naive weighted quotient diverged on {name} at {threads} threads"
            );
            println!(
                "{{\"bench\":\"quotient\",\"case\":\"weighted\",\"graph\":\"{}\",\
                 \"clusters\":{},\"threads\":{},\"seconds_naive\":{:.6},\
                 \"seconds_kernel\":{:.6},\"speedup_kernel_vs_naive\":{:.3},\
                 \"peak_alloc_bytes\":{}}}",
                name,
                k,
                threads,
                naive_secs,
                kernel_secs,
                naive_secs / kernel_secs,
                pardec_bench::alloc::peak_bytes(),
            );

            // Builder: the kernel symmetrize + scatter build vs the seed-era
            // sort-dedup build over the raw edge list.
            let edges: Vec<(NodeId, NodeId)> = g.edges().collect();
            let (naive_g, naive_secs) =
                best_of_3(threads, || naive::build_csr(g.num_nodes(), &edges));
            let (kernel_g, kernel_secs) = best_of_3(threads, || {
                let mut b = GraphBuilder::with_capacity(g.num_nodes(), edges.len());
                b.extend_edges(edges.iter().copied());
                b.build()
            });
            assert_eq!(
                kernel_g, naive_g,
                "kernel and naive builder diverged on {name} at {threads} threads"
            );
            println!(
                "{{\"bench\":\"quotient\",\"case\":\"builder\",\"graph\":\"{}\",\
                 \"edges\":{},\"threads\":{},\"seconds_naive\":{:.6},\
                 \"seconds_kernel\":{:.6},\"speedup_kernel_vs_naive\":{:.3},\
                 \"peak_alloc_bytes\":{}}}",
                name,
                edges.len(),
                threads,
                naive_secs,
                kernel_secs,
                naive_secs / kernel_secs,
                pardec_bench::alloc::peak_bytes(),
            );
        }

        // The seed bench's quotient-diameter row, kept for trajectory
        // continuity (4-thread pool).
        let wq = weighted_quotient(&g, &cl.assignment, &cl.dist_to_center, k);
        let (diam, secs) = best_of_3(4, || wq.apsp_diameter());
        println!(
            "{{\"bench\":\"quotient\",\"case\":\"weighted-apsp-diameter\",\"graph\":\"{}\",\
             \"clusters\":{},\"diameter\":{},\"threads\":4,\"seconds\":{:.6},\
             \"peak_alloc_bytes\":{}}}",
            name,
            k,
            diam,
            secs,
            pardec_bench::alloc::peak_bytes(),
        );
    }
}
