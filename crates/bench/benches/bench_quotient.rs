//! Criterion bench: quotient-graph machinery of §4 — unweighted and
//! weighted construction plus the weighted quotient APSP diameter.

use criterion::{criterion_group, criterion_main, Criterion};
use pardec_core::{cluster, ClusterParams};
use pardec_graph::generators;
use pardec_graph::quotient::{quotient, weighted_quotient};

fn bench_quotient(c: &mut Criterion) {
    let g = generators::mesh(150, 150);
    let r = cluster(&g, &ClusterParams::new(8, 7));
    let cl = r.clustering;
    let k = cl.num_clusters();

    let mut group = c.benchmark_group("quotient");
    group.bench_function("unweighted", |b| b.iter(|| quotient(&g, &cl.assignment, k)));
    group.bench_function("weighted", |b| {
        b.iter(|| weighted_quotient(&g, &cl.assignment, &cl.dist_to_center, k))
    });
    let wq = weighted_quotient(&g, &cl.assignment, &cl.dist_to_center, k);
    group.bench_function("weighted-apsp-diameter", |b| b.iter(|| wq.apsp_diameter()));
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(3))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_quotient
}
criterion_main!(benches);
