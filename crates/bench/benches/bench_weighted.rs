//! Weighted-pipeline bench: `weighted_cluster` on the bucketed frontier
//! engine vs the retained sequential Dijkstra oracle, one JSON line per
//! (workload, weights, threads, delta) configuration.
//!
//! ```text
//! cargo bench -p pardec-bench --bench bench_weighted
//! ```
//!
//! Scale with `--scale {ci,default,full}` or `PARDEC_SCALE`, like the table
//! binaries. The three graph families of the paper's evaluation each run
//! with pseudo-random and unit weights, on 1- and 4-worker pools, across
//! two bucket widths; every configuration's clustering is asserted
//! byte-identical to the sequential oracle before its timing is reported —
//! the bench doubles as an end-to-end equivalence check of the engine's
//! determinism contract (outputs depend on neither the pool size nor δ).

use pardec_bench::workloads::Scale;
use pardec_bench::{scale_from_args, timed};
use pardec_core::weighted_cluster::naive;
use pardec_core::{weighted_cluster_result, weighted_diameter, ClusterParams};
use pardec_graph::{generators, CsrGraph, NodeId, WeightedGraph};

const THREAD_CONFIGS: [usize; 2] = [1, 4];
const DELTAS: [u64; 2] = [1, 8];
const TAU: usize = 4;
const SEED: u64 = 7;

fn workloads(scale: Scale) -> Vec<(&'static str, CsrGraph)> {
    let (mesh_side, pl_nodes, road_side) = match scale {
        Scale::Ci => (60, 6_000, 45),
        Scale::Default => (140, 30_000, 110),
        Scale::Full => (280, 120_000, 220),
    };
    vec![
        ("mesh", generators::mesh(mesh_side, mesh_side)),
        (
            "powerlaw",
            generators::windowed_preferential_attachment(pl_nodes, 8, 0.025, SEED),
        ),
        (
            "road",
            generators::road_network(road_side, road_side, 0.4, SEED),
        ),
    ]
}

/// Deterministic weighted variants of an unweighted workload graph.
fn weightings(g: &CsrGraph) -> Vec<(&'static str, WeightedGraph)> {
    let random: Vec<(NodeId, NodeId, u64)> = g
        .edges()
        .map(|(u, v)| (u, v, u64::from((u * 31 + v) % 7) + 1))
        .collect();
    let unit: Vec<(NodeId, NodeId, u64)> = g.edges().map(|(u, v)| (u, v, 1)).collect();
    vec![
        ("random", WeightedGraph::from_edges(g.num_nodes(), &random)),
        ("unit", WeightedGraph::from_edges(g.num_nodes(), &unit)),
    ]
}

fn main() {
    let scale = scale_from_args();
    for (workload, g) in workloads(scale) {
        for (weights, wg) in weightings(&g) {
            let params = ClusterParams::new(TAU, SEED);
            let (oracle, naive_seconds) = timed(|| naive::weighted_cluster(&wg, &params));
            for threads in THREAD_CONFIGS {
                let pool = rayon::ThreadPoolBuilder::new()
                    .num_threads(threads)
                    .build()
                    .expect("pool construction cannot fail");
                for delta in DELTAS {
                    let params = ClusterParams::new(TAU, SEED).with_delta(delta);
                    // One warm-up, then best-of-three to damp scheduler noise.
                    let _ = pool.install(|| weighted_cluster_result(&wg, &params));
                    let mut best = f64::INFINITY;
                    let mut result = None;
                    for _ in 0..3 {
                        let (r, secs) =
                            timed(|| pool.install(|| weighted_cluster_result(&wg, &params)));
                        best = best.min(secs);
                        result = Some(r);
                    }
                    let r = result.expect("ran at least once");
                    let identical = r.clustering == oracle;
                    println!(
                        "{{\"bench\":\"weighted\",\"workload\":\"{}\",\"weights\":\"{}\",\
                         \"nodes\":{},\"edges\":{},\"threads\":{},\"delta\":{},\
                         \"seconds\":{:.6},\"naive_seconds\":{:.6},\"speedup_vs_naive\":{:.3},\
                         \"clusters\":{},\"max_weighted_radius\":{},\"max_hop_radius\":{},\
                         \"buckets\":{},\"rounds\":{},\"identical_output\":{},\
                         \"peak_alloc_bytes\":{}}}",
                        workload,
                        weights,
                        wg.num_nodes(),
                        wg.num_edges(),
                        threads,
                        delta,
                        best,
                        naive_seconds,
                        naive_seconds / best,
                        r.clustering.num_clusters(),
                        r.clustering.max_weighted_radius(),
                        r.clustering.max_hop_radius(),
                        r.trace.buckets,
                        r.trace.rounds.len(),
                        identical,
                        pardec_bench::alloc::peak_bytes(),
                    );
                    assert!(
                        identical,
                        "{workload}/{weights} engine diverged from the sequential oracle \
                         at {threads} threads, delta {delta}"
                    );
                }
            }
            // One diameter row per weighted workload: the end-to-end
            // pipeline (decompose + weighted quotient + APSP + sweep).
            let (a, secs) = timed(|| weighted_diameter(&wg, &ClusterParams::new(TAU, SEED)));
            println!(
                "{{\"bench\":\"weighted_diameter\",\"workload\":\"{}\",\"weights\":\"{}\",\
                 \"nodes\":{},\"edges\":{},\"seconds\":{:.6},\"lower\":{},\"upper\":{},\
                 \"weighted_radius\":{},\"quotient_nodes\":{},\"quotient_edges\":{},\
                 \"peak_alloc_bytes\":{}}}",
                workload,
                weights,
                wg.num_nodes(),
                wg.num_edges(),
                secs,
                a.lower_bound,
                a.upper_bound,
                a.weighted_radius,
                a.quotient_nodes,
                a.quotient_edges,
                pardec_bench::alloc::peak_bytes(),
            );
            assert!(a.lower_bound <= a.upper_bound);
        }
    }
}
