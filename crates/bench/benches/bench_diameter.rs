//! Criterion bench: the Table 3/4 diameter pipeline — our quotient-based
//! approximation vs the BFS baseline vs exact iFUB.

use criterion::{criterion_group, criterion_main, Criterion};
use pardec_core::bfs_baseline::bfs_diameter;
use pardec_core::{approximate_diameter, DiameterParams};
use pardec_graph::{diameter, generators};

fn bench_diameter(c: &mut Criterion) {
    let mut group = c.benchmark_group("diameter");
    let workloads = [
        ("mesh-100x100", generators::mesh(100, 100)),
        ("road-100x100", generators::road_network(100, 100, 0.4, 103)),
    ];
    for (name, g) in &workloads {
        let tau = (g.num_nodes() / 100 / 40).max(1);
        group.bench_function(format!("{name}/cluster-approx"), |b| {
            b.iter(|| approximate_diameter(g, &DiameterParams::new(tau, 11)))
        });
        group.bench_function(format!("{name}/bfs-2approx"), |b| {
            b.iter(|| bfs_diameter(g, 11))
        });
        group.bench_function(format!("{name}/ifub-exact"), |b| {
            b.iter(|| diameter::ifub(g, 0))
        });
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(3))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_diameter
}
criterion_main!(benches);
