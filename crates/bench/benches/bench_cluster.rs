//! Criterion bench: CLUSTER(τ) decomposition throughput on the three graph
//! families of Table 2, across granularities.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pardec_core::{cluster, ClusterParams};
use pardec_graph::generators;

fn bench_cluster(c: &mut Criterion) {
    let mut group = c.benchmark_group("cluster");
    let workloads = [
        ("mesh-100x100", generators::mesh(100, 100)),
        ("road-100x100", generators::road_network(100, 100, 0.4, 103)),
        (
            "ba-20k",
            generators::preferential_attachment(20_000, 8, 101),
        ),
    ];
    for (name, g) in &workloads {
        for tau in [4usize, 32] {
            group.bench_with_input(
                BenchmarkId::new(*name, format!("tau={tau}")),
                &tau,
                |b, &tau| b.iter(|| cluster(g, &ClusterParams::new(tau, 7))),
            );
        }
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(3))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_cluster
}
criterion_main!(benches);
