//! Criterion bench: the MPX baseline decomposition (Table 2's competitor),
//! at two granularity regimes (β).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pardec_core::mpx;
use pardec_graph::generators;

fn bench_mpx(c: &mut Criterion) {
    let mut group = c.benchmark_group("mpx");
    let workloads = [
        ("mesh-100x100", generators::mesh(100, 100)),
        ("road-100x100", generators::road_network(100, 100, 0.4, 103)),
        (
            "ba-20k",
            generators::preferential_attachment(20_000, 8, 101),
        ),
    ];
    for (name, g) in &workloads {
        for beta in [0.05f64, 0.5] {
            group.bench_with_input(
                BenchmarkId::new(*name, format!("beta={beta}")),
                &beta,
                |b, &beta| b.iter(|| mpx(g, beta, 7)),
            );
        }
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(3))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_mpx
}
criterion_main!(benches);
