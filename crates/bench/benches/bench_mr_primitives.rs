//! MR-emulation bench: the radix-shuffle engine against the seed-era naive
//! engine on a shuffle-dominated aggregation round, the map-side combiner's
//! ledger on a power-law broadcast superstep, and the Fact 1 primitives —
//! one JSON line per configuration (the `bench_frontier` format).
//!
//! ```text
//! cargo bench -p pardec-bench --bench bench_mr_primitives
//! ```
//!
//! Scale with `--scale {ci,default,full}` or `PARDEC_SCALE`. Every
//! radix-vs-naive comparison asserts that the two engines produce the same
//! key → aggregate multiset before its timing is reported, and the combiner
//! rows assert that the post-combine volume shrinks by the average-degree
//! factor when the sender side is a single map chunk — the bench doubles as
//! an end-to-end equivalence and accounting check.

use pardec_bench::workloads::Scale;
use pardec_bench::{scale_from_args, timed};
use pardec_graph::generators;
use pardec_mr::algo::mr_bfs;
use pardec_mr::primitives::{mr_prefix_sum, mr_sort};
use pardec_mr::{Min, MrConfig, MrEngine, VertexEngine};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::BuildHasherDefault;

const THREAD_CONFIGS: [usize; 3] = [1, 2, 4];

/// The seed-era round executor, kept verbatim as the naive baseline: a
/// sequential routing pass into per-bucket growable vectors, then a
/// per-partition `HashMap` group-by with parallel reducers.
fn naive_aggregate_round(input: &[(u32, u64)], partitions: usize) -> Vec<(u32, u64)> {
    use rayon::prelude::*;
    type DetState = BuildHasherDefault<DefaultHasher>;
    // Both contenders take the input by value (the seed bench cloned inside
    // the measured closure too), so the copy cost is charged equally.
    let pairs = input.to_vec();
    let mut buckets: Vec<Vec<(u32, u64)>> = (0..partitions).map(|_| Vec::new()).collect();
    for (k, v) in pairs {
        let p = pardec_mr::shuffle::partition_of(&k, partitions);
        buckets[p].push((k, v));
    }
    buckets
        .into_par_iter()
        .map(|bucket| {
            let mut groups: HashMap<u32, Vec<u64>, DetState> = HashMap::default();
            for (k, v) in bucket {
                groups.entry(k).or_default().push(v);
            }
            groups
                .into_iter()
                .map(|(k, vs)| (k, vs.into_iter().sum::<u64>()))
                .collect::<Vec<_>>()
        })
        .collect::<Vec<_>>()
        .concat()
}

fn radix_aggregate_round(input: &[(u32, u64)], partitions: usize) -> Vec<(u32, u64)> {
    let mut eng = MrEngine::new(MrConfig::with_partitions(partitions));
    eng.round(input.to_vec(), |&k, vs| {
        vec![(k, vs.into_iter().sum::<u64>())]
    })
    .expect("accounting-only round cannot fail")
}

/// Best-of-three wall-clock of `f` inside a pool of `threads` workers.
fn best_of_3<T: Send>(threads: usize, f: impl Fn() -> T + Sync + Send) -> (T, f64) {
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("pool construction cannot fail");
    let _ = pool.install(&f); // warm-up
    let mut best = f64::INFINITY;
    let mut result = None;
    for _ in 0..3 {
        let (r, secs) = timed(|| pool.install(&f));
        best = best.min(secs);
        result = Some(r);
    }
    (result.expect("ran at least once"), best)
}

/// The shuffle-dominated leg: many pairs, many keys, trivial reducers — the
/// round's cost *is* the shuffle, which is what the radix refactor targets.
fn bench_shuffle(scale: Scale) {
    let pairs = match scale {
        Scale::Ci => 400_000usize,
        Scale::Default => 1_500_000,
        Scale::Full => 6_000_000,
    };
    let keys = (pairs / 8) as u64;
    let input: Vec<(u32, u64)> = (0..pairs as u64)
        .map(|i| ((i.wrapping_mul(0x9E3779B97F4A7C15) % keys) as u32, i))
        .collect();
    for (threads, partitions) in THREAD_CONFIGS.iter().flat_map(|&t| [(t, 4usize), (t, 8)]) {
        let (mut naive_out, naive_secs) =
            best_of_3(threads, || naive_aggregate_round(&input, partitions));
        let (mut radix_out, radix_secs) =
            best_of_3(threads, || radix_aggregate_round(&input, partitions));
        naive_out.sort_unstable();
        radix_out.sort_unstable();
        assert_eq!(
            naive_out, radix_out,
            "radix and naive aggregates diverged at {threads} threads"
        );
        println!(
            "{{\"bench\":\"mr\",\"case\":\"shuffle-aggregate\",\"pairs\":{},\"keys\":{},\
             \"threads\":{},\"partitions\":{},\"seconds_naive\":{:.6},\"seconds_radix\":{:.6},\
             \"speedup_radix_vs_naive\":{:.3},\
             \"peak_alloc_bytes\":{}}}",
            pairs,
            keys,
            threads,
            partitions,
            naive_secs,
            radix_secs,
            naive_secs / radix_secs,
            pardec_bench::alloc::peak_bytes(),
        );
    }
}

/// The combiner leg: a full-broadcast superstep (HADI round 1's shape) on a
/// power-law graph. Map side emits one pair per arc; the combiner ships at
/// most one per (destination, sender chunk).
fn bench_combiner(scale: Scale) {
    let nodes = match scale {
        Scale::Ci => 40_000usize,
        Scale::Default => 160_000,
        Scale::Full => 600_000,
    };
    let g = generators::windowed_preferential_attachment(nodes, 8, 0.025, 7);
    let arcs = g.num_arcs() as f64;
    let avg_degree = arcs / g.num_nodes() as f64;
    for partitions in [1usize, 4, 16] {
        let (report, secs) = best_of_3(4, || {
            let mut eng: VertexEngine<u32, Min<u32>> =
                VertexEngine::with_partitions(&g, partitions, |_| u32::MAX);
            for v in 0..g.num_nodes() as u32 {
                eng.post(v, Min(v));
            }
            eng.step(|_, s, m| {
                *s = m.0;
                None
            })
        });
        let ratio = report.messages as f64 / report.combined_messages.max(1) as f64;
        println!(
            "{{\"bench\":\"mr\",\"case\":\"combiner-powerlaw\",\"nodes\":{},\"arcs\":{},\
             \"partitions\":{},\"map_pairs\":{},\"shuffled_pairs\":{},\
             \"combine_ratio\":{:.3},\"avg_degree\":{:.3},\"seconds\":{:.6},\
             \"peak_alloc_bytes\":{}}}",
            g.num_nodes(),
            g.num_arcs(),
            partitions,
            report.messages,
            report.combined_messages,
            ratio,
            avg_degree,
            secs,
            pardec_bench::alloc::peak_bytes(),
        );
        assert_eq!(report.messages, g.num_arcs() as u64);
        if partitions == 1 {
            // One map chunk ⇒ one combined message per receiving vertex:
            // the shuffled volume shrinks by exactly the average-degree
            // factor (the acceptance bar for this refactor).
            assert!(
                ratio + 1e-9 >= avg_degree,
                "combiner ratio {ratio} below average degree {avg_degree}"
            );
        }
    }
}

/// Fact 1 primitives and the vertex-program BFS, timed as before but in the
/// JSON-lines format.
fn bench_primitives(scale: Scale) {
    let n = match scale {
        Scale::Ci => 100_000u64,
        Scale::Default => 400_000,
        Scale::Full => 1_600_000,
    };
    let items: Vec<u64> = (0..n).map(|i| i.wrapping_mul(0x9E3779B97F4A7C15)).collect();
    let (_, sort_secs) = best_of_3(4, || {
        let mut eng = MrEngine::new(MrConfig::default());
        mr_sort(&mut eng, items.clone(), 42).expect("sort cannot fail")
    });
    println!(
        "{{\"bench\":\"mr\",\"case\":\"sort\",\"items\":{n},\"threads\":4,\
         \"seconds\":{sort_secs:.6},\"peak_alloc_bytes\":{}}}",
        pardec_bench::alloc::peak_bytes(),
    );
    let values: Vec<u64> = (0..n).map(|i| i % 17).collect();
    let (_, prefix_secs) = best_of_3(4, || {
        let mut eng = MrEngine::new(MrConfig::default());
        mr_prefix_sum(&mut eng, values.clone()).expect("prefix sum cannot fail")
    });
    println!(
        "{{\"bench\":\"mr\",\"case\":\"prefix-sum\",\"items\":{n},\"threads\":4,\
         \"seconds\":{prefix_secs:.6},\"peak_alloc_bytes\":{}}}",
        pardec_bench::alloc::peak_bytes(),
    );
    let side = match scale {
        Scale::Ci => 60usize,
        Scale::Default => 120,
        Scale::Full => 240,
    };
    let g = generators::mesh(side, side);
    let (run, bfs_secs) = best_of_3(4, || mr_bfs(&g, 0));
    println!(
        "{{\"bench\":\"mr\",\"case\":\"vertex-bfs-mesh\",\"nodes\":{},\"threads\":4,\
         \"supersteps\":{},\"seconds\":{:.6},\
         \"peak_alloc_bytes\":{}}}",
        g.num_nodes(),
        run.supersteps,
        bfs_secs,
        pardec_bench::alloc::peak_bytes(),
    );
}

fn main() {
    let scale = scale_from_args();
    bench_shuffle(scale);
    bench_combiner(scale);
    bench_primitives(scale);
}
