//! Criterion bench: the MR emulation itself — Fact 1 primitives (sort,
//! prefix sum), a generic aggregation round, and a vertex-program BFS.

use criterion::{criterion_group, criterion_main, Criterion};
use pardec_graph::generators;
use pardec_mr::algo::mr_bfs;
use pardec_mr::primitives::{mr_prefix_sum, mr_sort};
use pardec_mr::{MrConfig, MrEngine};

fn bench_mr(c: &mut Criterion) {
    let mut group = c.benchmark_group("mr");
    let items: Vec<u64> = (0..100_000u64)
        .map(|i| i.wrapping_mul(0x9E3779B97F4A7C15))
        .collect();
    group.bench_function("sort-100k", |b| {
        b.iter(|| {
            let mut eng = MrEngine::new(MrConfig::default());
            mr_sort(&mut eng, items.clone(), 42).unwrap()
        })
    });
    let values: Vec<u64> = (0..100_000u64).map(|i| i % 17).collect();
    group.bench_function("prefix-sum-100k", |b| {
        b.iter(|| {
            let mut eng = MrEngine::new(MrConfig::default());
            mr_prefix_sum(&mut eng, values.clone()).unwrap()
        })
    });
    let pairs: Vec<(u32, u64)> = (0..100_000u32).map(|i| (i % 1024, i as u64)).collect();
    group.bench_function("aggregate-round-100k", |b| {
        b.iter(|| {
            let mut eng = MrEngine::new(MrConfig::default());
            eng.round(pairs.clone(), |&k, vs: Vec<u64>| {
                vec![(k, vs.into_iter().sum::<u64>())]
            })
            .unwrap()
        })
    });
    let g = generators::mesh(60, 60);
    group.bench_function("vertex-bfs-mesh-60x60", |b| b.iter(|| mr_bfs(&g, 0)));
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(3))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_mr
}
criterion_main!(benches);
