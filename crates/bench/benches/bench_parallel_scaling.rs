//! Thread-scaling bench: the same decomposition workload on explicit pools
//! of 1, 2, and 4 workers, one JSON line per configuration, so the BENCH
//! trajectory can track the runtime's speedup (and verify that results stay
//! byte-identical while only the wall clock moves).
//!
//! ```text
//! cargo bench -p pardec-bench --bench bench_parallel_scaling
//! ```
//!
//! Scale with `--scale {ci,default,full}` or `PARDEC_SCALE`, like the table
//! binaries. On a single-core machine the speedup hovers around 1.0× (the
//! runtime's overhead is the interesting number there); the ≥ 1.5× @ 4
//! threads target applies to multi-core runners.

use pardec_bench::workloads::Scale;
use pardec_bench::{scale_from_args, timed};
use pardec_core::{cluster, ClusterParams};
use pardec_graph::generators;

const THREAD_CONFIGS: [usize; 3] = [1, 2, 4];
const SEED: u64 = 7;

fn main() {
    let scale = scale_from_args();
    let n = match scale {
        Scale::Ci => 30_000,
        Scale::Default => 120_000,
        Scale::Full => 400_000,
    };
    // The paper's small-diameter regime: a heavy-tailed power-law graph, the
    // workload whose per-round parallel maps dominate CLUSTER's runtime.
    let g = generators::windowed_preferential_attachment(n, 8, 0.025, SEED);
    let tau = (n / 1000).max(4);
    let params = ClusterParams::new(tau, SEED);

    let mut baseline_seconds = None;
    let mut baseline_assignment = None;
    for threads in THREAD_CONFIGS {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("pool construction cannot fail");
        // One warm-up, then best-of-three to damp scheduler noise.
        let _ = pool.install(|| cluster(&g, &params));
        let mut best = f64::INFINITY;
        let mut result = None;
        for _ in 0..3 {
            let (r, secs) = timed(|| pool.install(|| cluster(&g, &params)));
            best = best.min(secs);
            result = Some(r);
        }
        let assignment = result.expect("ran at least once").clustering.assignment;
        let identical = match &baseline_assignment {
            None => {
                baseline_assignment = Some(assignment);
                true
            }
            Some(base) => *base == assignment,
        };
        let speedup = match baseline_seconds {
            None => {
                baseline_seconds = Some(best);
                1.0
            }
            Some(base) => base / best,
        };
        println!(
            "{{\"bench\":\"parallel_scaling\",\"workload\":\"powerlaw-social\",\
             \"nodes\":{},\"edges\":{},\"tau\":{},\"threads\":{},\
             \"seconds\":{:.6},\"speedup_vs_1\":{:.3},\"identical_output\":{},\
             \"peak_alloc_bytes\":{}}}",
            g.num_nodes(),
            g.num_edges(),
            tau,
            threads,
            best,
            speedup,
            identical,
            pardec_bench::alloc::peak_bytes(),
        );
        assert!(
            identical,
            "decomposition output diverged at {threads} threads"
        );
    }
}
