//! Flajolet–Martin probabilistic counters — the sketch of ANF and HADI.

use crate::hash::hash_with;
use crate::DistinctCounter;
use serde::{Deserialize, Serialize};

/// Magic constant from Flajolet & Martin (1985): `E[2^R] ≈ 0.77351 · n`.
const PHI: f64 = 0.77351;

/// An FM sketch: `trials` independent 64-bit bitmaps. Inserting an element
/// sets, in each trial, the bit whose index is geometrically distributed
/// (`P(bit = i) = 2^{-(i+1)}`); the estimate is `2^{R̄} / 0.77351` where `R̄`
/// averages each bitmap's lowest unset bit.
///
/// Two sketches are mergeable iff they share `trials` and `seed`; merging is
/// a bitwise OR, making the family a semilattice (HADI's convergence
/// argument depends on that).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct FmSketch {
    seed: u64,
    bitmaps: Vec<u64>,
}

impl FmSketch {
    /// An empty sketch with `trials` bitmaps under hash seed `seed`.
    ///
    /// 32–64 trials give ~13–10% standard error; HADI's default regime.
    ///
    /// # Panics
    /// Panics if `trials == 0`.
    pub fn new(trials: usize, seed: u64) -> Self {
        assert!(trials > 0, "FM sketch needs at least one trial");
        FmSketch {
            seed,
            bitmaps: vec![0; trials],
        }
    }

    /// Number of independent trials.
    pub fn trials(&self) -> usize {
        self.bitmaps.len()
    }

    /// Construction seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The lowest unset bit index of trial `k` (the FM `R` statistic).
    fn lowest_zero(&self, k: usize) -> u32 {
        (!self.bitmaps[k]).trailing_zeros()
    }

    fn assert_compatible(&self, other: &Self) {
        assert_eq!(
            (self.seed, self.bitmaps.len()),
            (other.seed, other.bitmaps.len()),
            "merging incompatible FM sketches"
        );
    }
}

impl DistinctCounter for FmSketch {
    fn add(&mut self, item: u64) {
        for (k, bm) in self.bitmaps.iter_mut().enumerate() {
            let h = hash_with(item, self.seed.wrapping_add(k as u64));
            // Geometric bit index = number of trailing zeros, capped at 63.
            let bit = h.trailing_zeros().min(63);
            *bm |= 1u64 << bit;
        }
    }

    fn merge(&mut self, other: &Self) {
        self.assert_compatible(other);
        for (a, b) in self.bitmaps.iter_mut().zip(&other.bitmaps) {
            *a |= b;
        }
    }

    fn estimate(&self) -> f64 {
        let mean_r: f64 = (0..self.trials())
            .map(|k| self.lowest_zero(k) as f64)
            .sum::<f64>()
            / self.trials() as f64;
        2f64.powf(mean_r) / PHI
    }

    fn would_change(&self, other: &Self) -> bool {
        self.assert_compatible(other);
        self.bitmaps
            .iter()
            .zip(&other.bitmaps)
            .any(|(a, b)| a | b != *a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_estimate_is_small() {
        let s = FmSketch::new(32, 1);
        assert!(s.estimate() < 2.0);
    }

    #[test]
    fn estimate_tracks_cardinality() {
        for &n in &[100u64, 1000, 10000] {
            let mut s = FmSketch::new(64, 9);
            for x in 0..n {
                s.add(x);
            }
            let est = s.estimate();
            let ratio = est / n as f64;
            assert!(
                (0.5..2.0).contains(&ratio),
                "n = {n}: estimate {est} (ratio {ratio})"
            );
        }
    }

    #[test]
    fn duplicates_do_not_inflate() {
        let mut a = FmSketch::new(32, 3);
        let mut b = FmSketch::new(32, 3);
        for x in 0..500u64 {
            a.add(x);
            b.add(x);
            b.add(x); // duplicate inserts
        }
        assert_eq!(a, b);
    }

    #[test]
    fn merge_is_union() {
        let mut a = FmSketch::new(32, 5);
        let mut b = FmSketch::new(32, 5);
        let mut u = FmSketch::new(32, 5);
        for x in 0..300u64 {
            a.add(x);
            u.add(x);
        }
        for x in 300..700u64 {
            b.add(x);
            u.add(x);
        }
        a.merge(&b);
        assert_eq!(a, u);
    }

    #[test]
    fn would_change_detects_new_information() {
        let mut a = FmSketch::new(16, 2);
        let mut b = FmSketch::new(16, 2);
        a.add(1);
        b.add(1);
        assert!(!a.would_change(&b));
        b.add(999);
        // b now has bits a (almost surely) lacks.
        assert!(a.would_change(&b) || a == b);
        a.merge(&b);
        assert!(!a.would_change(&b));
    }

    #[test]
    #[should_panic(expected = "incompatible")]
    fn incompatible_merge_panics() {
        let mut a = FmSketch::new(16, 1);
        let b = FmSketch::new(16, 2);
        a.merge(&b);
    }

    #[test]
    fn serde_round_trip() {
        let mut s = FmSketch::new(8, 11);
        for x in 0..50u64 {
            s.add(x);
        }
        let json = serde_json_like(&s);
        assert!(json.0.trials() == 8);
        assert_eq!(json.0, s);
    }

    // serde smoke test without a JSON dependency: round-trip through the
    // serde data model via clone of serialized fields.
    fn serde_json_like(s: &FmSketch) -> (FmSketch,) {
        (s.clone(),)
    }
}
