//! Deterministic 64-bit mixing (splitmix64) shared by the sketch families.
//!
//! Sketches that must be merged need *identical* hash functions, so the hash
//! is derived purely from the item and the construction seed — never from
//! per-instance randomness.

/// splitmix64 finalizer: a fast, well-distributed 64→64 bit mixer.
#[inline]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Hash of `item` under trial/seed `salt`.
#[inline]
pub fn hash_with(item: u64, salt: u64) -> u64 {
    splitmix64(item ^ splitmix64(salt))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(splitmix64(42), splitmix64(42));
        assert_eq!(hash_with(1, 2), hash_with(1, 2));
        assert_ne!(hash_with(1, 2), hash_with(1, 3));
        assert_ne!(hash_with(1, 2), hash_with(2, 2));
    }

    #[test]
    fn bits_look_uniform() {
        // Cheap avalanche check: over many inputs each of the 64 bits should
        // be set roughly half the time.
        let n = 4096u64;
        let mut ones = [0u32; 64];
        for x in 0..n {
            let h = splitmix64(x);
            for (b, slot) in ones.iter_mut().enumerate() {
                *slot += ((h >> b) & 1) as u32;
            }
        }
        for (b, &c) in ones.iter().enumerate() {
            let frac = c as f64 / n as f64;
            assert!((0.4..0.6).contains(&frac), "bit {b} biased: {frac}");
        }
    }
}
