//! # pardec-sketch — probabilistic distinct-count sketches
//!
//! The HADI baseline of the paper (Kang et al., TKDD'11 — the MapReduce
//! version of ANF, Palmer et al., KDD'02) estimates the *neighbourhood
//! function* `N(t) = |{(u, v) : dist(u, v) ≤ t}|` by maintaining one
//! distinct-count sketch per node and OR-merging sketches along edges once
//! per BFS level. This crate provides the two sketch families used by that
//! line of work:
//!
//! * [`FmSketch`] — Flajolet–Martin probabilistic counters with `K`
//!   independent trials, exactly as in ANF/HADI (merge = bitwise OR,
//!   estimate `2^{R̄}/0.77351` from the mean least-zero-bit position);
//! * [`HllSketch`] — HyperLogLog registers (merge = element-wise max), the
//!   sketch behind HyperANF, with linear-counting small-range correction.
//!
//! Both are deterministic given their construction seed, `serde`-serializable,
//! and form a **merge semilattice** (commutative, associative, idempotent)
//! — the property the vertex-program propagation relies on; it is enforced
//! by property tests.
//!
//! ```
//! use pardec_sketch::{DistinctCounter, FmSketch};
//!
//! let mut a = FmSketch::new(32, 7);
//! let mut b = FmSketch::new(32, 7);
//! for x in 0..600u64 { a.add(x); }
//! for x in 400..1000u64 { b.add(x); }
//! a.merge(&b);
//! let est = a.estimate();
//! assert!(est > 500.0 && est < 2000.0, "estimate {est}");
//! ```

mod fm;
pub mod hash;
mod hll;

pub use fm::FmSketch;
pub use hll::HllSketch;

/// Common interface over the two sketch families, letting HADI be generic in
/// the sketch it propagates.
pub trait DistinctCounter: Clone + Send + Sync {
    /// Inserts an element (by 64-bit id).
    fn add(&mut self, item: u64);
    /// Merges another sketch of the same family/seed into this one.
    fn merge(&mut self, other: &Self);
    /// Estimated number of distinct inserted elements.
    fn estimate(&self) -> f64;
    /// Returns `true` if `merge(other)` would change this sketch — the
    /// convergence signal of sketch propagation.
    fn would_change(&self, other: &Self) -> bool;
}
