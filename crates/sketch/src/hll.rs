//! HyperLogLog registers — the sketch behind HyperANF (Boldi–Rosa–Vigna).

use crate::hash::hash_with;
use crate::DistinctCounter;
use serde::{Deserialize, Serialize};

/// HyperLogLog sketch with `2^precision` 6-bit-equivalent registers (stored
/// as bytes). Merge is element-wise max; the estimator is the bias-corrected
/// harmonic mean with linear-counting small-range correction.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct HllSketch {
    precision: u8,
    seed: u64,
    registers: Vec<u8>,
}

impl HllSketch {
    /// A sketch with `2^precision` registers (`4 ≤ precision ≤ 16`);
    /// standard error ≈ `1.04 / √(2^precision)`.
    ///
    /// # Panics
    /// Panics if `precision` is outside `4..=16`.
    pub fn new(precision: u8, seed: u64) -> Self {
        assert!(
            (4..=16).contains(&precision),
            "precision {precision} outside 4..=16"
        );
        HllSketch {
            precision,
            seed,
            registers: vec![0; 1 << precision],
        }
    }

    /// Number of registers `m = 2^precision`.
    pub fn num_registers(&self) -> usize {
        self.registers.len()
    }

    fn alpha(m: usize) -> f64 {
        match m {
            16 => 0.673,
            32 => 0.697,
            64 => 0.709,
            _ => 0.7213 / (1.0 + 1.079 / m as f64),
        }
    }

    fn assert_compatible(&self, other: &Self) {
        assert_eq!(
            (self.precision, self.seed),
            (other.precision, other.seed),
            "merging incompatible HLL sketches"
        );
    }
}

impl DistinctCounter for HllSketch {
    fn add(&mut self, item: u64) {
        let h = hash_with(item, self.seed);
        let p = self.precision as u32;
        let idx = (h >> (64 - p)) as usize;
        // Rank of the first set bit in the remaining 64 - p bits, 1-based.
        let rest = h << p;
        let rho = (rest.leading_zeros().min(63 - p) + 1) as u8;
        if rho > self.registers[idx] {
            self.registers[idx] = rho;
        }
    }

    fn merge(&mut self, other: &Self) {
        self.assert_compatible(other);
        for (a, b) in self.registers.iter_mut().zip(&other.registers) {
            if *b > *a {
                *a = *b;
            }
        }
    }

    fn estimate(&self) -> f64 {
        let m = self.num_registers() as f64;
        let sum: f64 = self.registers.iter().map(|&r| 2f64.powi(-(r as i32))).sum();
        let raw = Self::alpha(self.num_registers()) * m * m / sum;
        if raw <= 2.5 * m {
            // Small-range correction: linear counting on empty registers.
            let zeros = self.registers.iter().filter(|&&r| r == 0).count();
            if zeros > 0 {
                return m * (m / zeros as f64).ln();
            }
        }
        raw
    }

    fn would_change(&self, other: &Self) -> bool {
        self.assert_compatible(other);
        self.registers
            .iter()
            .zip(&other.registers)
            .any(|(a, b)| b > a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_estimate_zero() {
        let s = HllSketch::new(10, 0);
        assert!(s.estimate().abs() < 1e-9);
    }

    #[test]
    fn estimate_accuracy() {
        // precision 12 -> ~1.6% standard error; allow 5 sigma.
        for &n in &[1000u64, 50_000, 200_000] {
            let mut s = HllSketch::new(12, 4);
            for x in 0..n {
                s.add(x);
            }
            let est = s.estimate();
            let err = (est - n as f64).abs() / n as f64;
            assert!(err < 0.09, "n = {n}: estimate {est} (err {err})");
        }
    }

    #[test]
    fn merge_is_union() {
        let mut a = HllSketch::new(10, 6);
        let mut b = HllSketch::new(10, 6);
        let mut u = HllSketch::new(10, 6);
        for x in 0..4000u64 {
            a.add(x);
            u.add(x);
        }
        for x in 2000..8000u64 {
            b.add(x);
            u.add(x);
        }
        a.merge(&b);
        assert_eq!(a, u);
    }

    #[test]
    fn idempotent_merge() {
        let mut a = HllSketch::new(8, 1);
        for x in 0..100u64 {
            a.add(x);
        }
        let before = a.clone();
        a.merge(&before.clone());
        assert_eq!(a, before);
        assert!(!a.would_change(&before));
    }

    #[test]
    #[should_panic(expected = "incompatible")]
    fn incompatible_merge_panics() {
        let mut a = HllSketch::new(8, 1);
        let b = HllSketch::new(9, 1);
        a.merge(&b);
    }

    #[test]
    #[should_panic(expected = "precision")]
    fn precision_bounds() {
        HllSketch::new(3, 0);
    }

    #[test]
    fn monotone_under_inserts() {
        let mut s = HllSketch::new(10, 2);
        let mut last = 0.0;
        for chunk in 0..10u64 {
            for x in chunk * 1000..(chunk + 1) * 1000 {
                s.add(x);
            }
            let est = s.estimate();
            assert!(est >= last * 0.99, "estimate regressed: {est} < {last}");
            last = est;
        }
    }
}
