//! Property tests for the PDEC2 session snapshot and the serve wire codec:
//! `Session::save` → `Session::load` is the identity on bytes, every strict
//! prefix of a snapshot is an error (never a silently shorter session), and
//! request encoding round-trips through the frame decoder.

use pardec::core::wire;
use pardec::prelude::*;
use proptest::prelude::*;

fn small_graph() -> impl Strategy<Value = CsrGraph> {
    prop_oneof![
        (2usize..9, 2usize..9).prop_map(|(r, c)| generators::mesh(r, c)),
        (8usize..60, 1u64..500).prop_map(|(n, s)| generators::gnm(
            n,
            (n * 2).min(n * (n - 1) / 2),
            s
        )),
        (2usize..40).prop_map(generators::path),
    ]
}

fn params(tau: usize, seed: u64, oracle: bool) -> SessionParams {
    let p = SessionParams::new(tau, seed).with_frontier(FrontierStrategy::TopDown);
    if oracle {
        p
    } else {
        p.without_oracle()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// save → load → save reproduces the exact bytes, and the reloaded
    /// session answers a distance query identically to the original.
    #[test]
    fn session_snapshot_round_trips(
        g in small_graph(),
        tau in 1usize..6,
        seed in any::<u64>(),
        oracle in any::<bool>(),
    ) {
        let n = g.num_nodes();
        let s = Session::build(g, &params(tau, seed, oracle));
        let mut bytes = Vec::new();
        s.save(&mut bytes).unwrap();

        let loaded = Session::load(&bytes, FrontierStrategy::TopDown).unwrap();
        let mut again = Vec::new();
        loaded.save(&mut again).unwrap();
        prop_assert_eq!(&bytes, &again, "re-saved snapshot differs");

        // The checked path accepts what the fast path accepts.
        let checked = Session::load_checked(&bytes, FrontierStrategy::TopDown).unwrap();
        prop_assert_eq!(
            &s.clustering().assignment,
            &checked.clustering().assignment
        );
        prop_assert_eq!(s.oracle().is_some(), oracle);
        prop_assert_eq!(loaded.oracle(), s.oracle());

        if oracle && n >= 2 {
            let q = [(0 as NodeId, (n - 1) as NodeId)];
            let (a, _) = s.distance(&q).unwrap();
            let (b, _) = loaded.distance(&q).unwrap();
            prop_assert_eq!(a, b);
        }
    }

    /// Every strict prefix of a session snapshot fails to load — a torn
    /// write can never masquerade as a smaller valid session.
    #[test]
    fn session_every_truncation_errors(
        g in (2usize..7, 2usize..7).prop_map(|(r, c)| generators::mesh(r, c)),
        tau in 1usize..4,
        oracle in any::<bool>(),
    ) {
        let s = Session::build(g, &params(tau, 7, oracle));
        let mut bytes = Vec::new();
        s.save(&mut bytes).unwrap();
        for len in 0..bytes.len() {
            prop_assert!(
                Session::load(&bytes[..len], FrontierStrategy::TopDown).is_err(),
                "prefix of {len}/{} bytes loaded", bytes.len()
            );
        }
    }

    /// The wire request codec is the identity on every batched request.
    #[test]
    fn wire_request_round_trips(
        pairs in proptest::collection::vec((0u32..1000, 0u32..1000), 0..50),
        nodes in proptest::collection::vec(0u32..1000, 0..50),
        sources in proptest::collection::vec(0u32..1000, 0..20),
    ) {
        let reqs = [
            wire::Request::Info,
            wire::Request::Distance(pairs),
            wire::Request::ClusterOf(nodes.clone()),
            wire::Request::Eccentricity(nodes.clone()),
            wire::Request::Nearest { sources, probes: nodes },
            wire::Request::Shutdown,
        ];
        for req in reqs {
            let body = wire::encode_request(&req);
            let back = wire::decode_request(&body).expect("decode failed");
            prop_assert_eq!(back, req);
        }
    }
}
