//! Property tests for the PDEC2 session snapshot and the serve wire codec:
//! `Session::save` → `Session::load` is the identity on bytes, every strict
//! prefix of a snapshot is an error (never a silently shorter session), and
//! request encoding round-trips through the frame decoder.

use pardec::core::wire;
use pardec::prelude::*;
use proptest::prelude::*;

fn small_graph() -> impl Strategy<Value = CsrGraph> {
    prop_oneof![
        (2usize..9, 2usize..9).prop_map(|(r, c)| generators::mesh(r, c)),
        (8usize..60, 1u64..500).prop_map(|(n, s)| generators::gnm(
            n,
            (n * 2).min(n * (n - 1) / 2),
            s
        )),
        (2usize..40).prop_map(generators::path),
    ]
}

fn params(tau: usize, seed: u64, oracle: bool) -> SessionParams {
    let p = SessionParams::new(tau, seed).with_frontier(FrontierStrategy::TopDown);
    if oracle {
        p
    } else {
        p.without_oracle()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// save → load → save reproduces the exact bytes, and the reloaded
    /// session answers a distance query identically to the original.
    #[test]
    fn session_snapshot_round_trips(
        g in small_graph(),
        tau in 1usize..6,
        seed in any::<u64>(),
        oracle in any::<bool>(),
    ) {
        let n = g.num_nodes();
        let s = Session::build(g, &params(tau, seed, oracle));
        let mut bytes = Vec::new();
        s.save(&mut bytes).unwrap();

        let loaded = Session::load(&bytes, FrontierStrategy::TopDown).unwrap();
        let mut again = Vec::new();
        loaded.save(&mut again).unwrap();
        prop_assert_eq!(&bytes, &again, "re-saved snapshot differs");

        // The checked path accepts what the fast path accepts.
        let checked = Session::load_checked(&bytes, FrontierStrategy::TopDown).unwrap();
        prop_assert_eq!(
            &s.clustering().assignment,
            &checked.clustering().assignment
        );
        prop_assert_eq!(s.oracle().is_some(), oracle);
        prop_assert_eq!(loaded.oracle(), s.oracle());

        if oracle && n >= 2 {
            let q = [(0 as NodeId, (n - 1) as NodeId)];
            let (a, _) = s.distance(&q).unwrap();
            let (b, _) = loaded.distance(&q).unwrap();
            prop_assert_eq!(a, b);
        }
    }

    /// Every strict prefix of a session snapshot fails to load — a torn
    /// write can never masquerade as a smaller valid session.
    #[test]
    fn session_every_truncation_errors(
        g in (2usize..7, 2usize..7).prop_map(|(r, c)| generators::mesh(r, c)),
        tau in 1usize..4,
        oracle in any::<bool>(),
    ) {
        let s = Session::build(g, &params(tau, 7, oracle));
        let mut bytes = Vec::new();
        s.save(&mut bytes).unwrap();
        for len in 0..bytes.len() {
            prop_assert!(
                Session::load(&bytes[..len], FrontierStrategy::TopDown).is_err(),
                "prefix of {len}/{} bytes loaded", bytes.len()
            );
        }
    }

    /// The wire request codec is the identity on every batched request.
    #[test]
    fn wire_request_round_trips(
        pairs in proptest::collection::vec((0u32..1000, 0u32..1000), 0..50),
        nodes in proptest::collection::vec(0u32..1000, 0..50),
        sources in proptest::collection::vec(0u32..1000, 0..20),
        path in proptest::collection::vec(0u32..26, 0..60)
            .prop_map(|v| v.into_iter().map(|b| (b'a' + b as u8) as char).collect::<String>()),
    ) {
        let reqs = [
            wire::Request::Info,
            wire::Request::Distance(pairs),
            wire::Request::ClusterOf(nodes.clone()),
            wire::Request::Eccentricity(nodes.clone()),
            wire::Request::Nearest { sources, probes: nodes },
            wire::Request::Reload { path },
            wire::Request::Shutdown,
            wire::Request::Stats,
        ];
        for req in reqs {
            let body = wire::encode_request(&req);
            let back = wire::decode_request(&body).expect("decode failed");
            prop_assert_eq!(back, req);
        }
    }

    /// The STATS body codec is the identity on arbitrary snapshots — any
    /// counter values, any opcode set, any latency distribution.
    #[test]
    fn wire_stats_body_round_trips(
        uptime_us in any::<u64>(),
        total_requests in any::<u64>(),
        errors in any::<u64>(),
        bytes_in in any::<u64>(),
        bytes_out in any::<u64>(),
        epoch in any::<u64>(),
        timeouts in any::<u64>(),
        shed in any::<u64>(),
        panics_caught in any::<u64>(),
        reloads_ok in any::<u64>(),
        reloads_rolled_back in any::<u64>(),
        ops in proptest::collection::vec(
            (any::<u8>(), any::<u64>(), proptest::collection::vec(any::<u64>(), 0..30)),
            0..6,
        ),
    ) {
        let per_op = ops
            .into_iter()
            .map(|(opcode, count, samples)| {
                let mut latency = pardec::obs::Log2Histogram::new();
                for s in samples {
                    latency.record(s);
                }
                wire::OpStats { opcode, count, latency }
            })
            .collect();
        let snap = wire::StatsSnapshot {
            uptime_us,
            total_requests,
            errors,
            bytes_in,
            bytes_out,
            epoch,
            timeouts,
            shed,
            panics_caught,
            reloads_ok,
            reloads_rolled_back,
            per_op,
        };
        let body = wire::encode_stats_body(&snap);
        prop_assert_eq!(wire::decode_stats_body(&body).unwrap(), snap.clone());

        // And through the full response frame: 15-byte header + body.
        let frame = wire::stats_response_frame(&snap);
        let resp = wire::decode_response(&frame).unwrap();
        prop_assert_eq!(resp.status, 0);
        prop_assert_eq!(resp.opcode, wire::OP_STATS);
        prop_assert_eq!(wire::decode_stats_body(&resp.body).unwrap(), snap);
    }
}

/// Golden wire bytes for the OP_STATS surface: the request is the bare
/// opcode, and a handcrafted snapshot encodes to exactly the frame the
/// module docs promise (15-byte response header, 89-byte fixed stats
/// header, 546-byte per-op entries). The expected bytes are derived here
/// by hand, independent of the encoder.
#[test]
fn wire_stats_golden_bytes() {
    assert_eq!(wire::encode_request(&wire::Request::Stats), vec![0x07]);

    let mut latency = pardec::obs::Log2Histogram::new();
    latency.record(0); // bucket 0
    latency.record(5); // bucket 3 (bit length of 5)
    latency.record(1000); // bucket 10
    let snap = wire::StatsSnapshot {
        uptime_us: 7,
        total_requests: 3,
        errors: 1,
        bytes_in: 100,
        bytes_out: 200,
        epoch: 2,
        timeouts: 4,
        shed: 5,
        panics_caught: 6,
        reloads_ok: 1,
        reloads_rolled_back: 9,
        per_op: vec![wire::OpStats {
            opcode: wire::OP_DIST,
            count: 3,
            latency,
        }],
    };

    // Response header: status 0, opcode STATS, zero ledger, strategy 0.
    let mut expect = vec![0u8, wire::OP_STATS];
    expect.extend_from_slice(&[0; 13]);
    // Fixed stats header: the five original counters, then the fault
    // ledger (epoch, timeouts, shed, panics, reloads ok / rolled back).
    for v in [7u64, 3, 1, 100, 200, 2, 4, 5, 6, 1, 9] {
        expect.extend_from_slice(&v.to_le_bytes());
    }
    expect.push(1); // n_ops
                    // The single per-op entry.
    expect.push(wire::OP_DIST);
    for v in [3u64, 3, 1005] {
        expect.extend_from_slice(&v.to_le_bytes());
    }
    expect.push(65); // n_buckets
    let mut buckets = [0u64; 65];
    buckets[0] = 1;
    buckets[3] = 1;
    buckets[10] = 1;
    for b in buckets {
        expect.extend_from_slice(&b.to_le_bytes());
    }
    assert_eq!(expect.len(), 15 + 89 + 546);

    let frame = wire::stats_response_frame(&snap);
    assert_eq!(frame, expect, "STATS frame layout drifted");
    assert_eq!(
        wire::decode_stats_body(&frame[15..]).unwrap(),
        snap,
        "golden frame no longer decodes to its snapshot"
    );
}

/// Live-daemon sibling of `session_every_truncation_errors`: a daemon
/// serving session A is asked to hot-reload **every strict prefix** of
/// snapshot B. Each attempt must be refused with `ERR_RELOAD_FAILED` and
/// rolled back — the daemon keeps answering for A in between — and the
/// final, untruncated B must swap in with an epoch bump.
#[test]
fn live_reload_rejects_every_truncated_snapshot() {
    use std::io::Write as _;

    let a = std::sync::Arc::new(Session::build(
        generators::mesh(4, 4),
        &SessionParams::new(2, 11).with_frontier(FrontierStrategy::TopDown),
    ));
    let b = Session::build(
        generators::mesh(3, 5),
        &SessionParams::new(2, 13)
            .with_frontier(FrontierStrategy::TopDown)
            .without_oracle(),
    );
    let mut b_bytes = Vec::new();
    b.save(&mut b_bytes).unwrap();

    let dir = std::env::temp_dir().join(format!("pardec_prop_reload_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let replacement = dir.join("b.pdec");

    let pool = std::sync::Arc::new(
        rayon::ThreadPoolBuilder::new()
            .num_threads(2)
            .build()
            .unwrap(),
    );
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let handle = wire::serve_with(
        listener,
        a,
        pool,
        1,
        wire::ServeConfig {
            allow_reload: true,
            ..wire::ServeConfig::default()
        },
    )
    .unwrap();

    let mut stream = std::net::TcpStream::connect(handle.addr()).unwrap();
    let reload = |stream: &mut std::net::TcpStream, path: String| {
        wire::write_frame(
            stream,
            &wire::encode_request(&wire::Request::Reload { path }),
        )
        .unwrap();
        let body = wire::read_frame(stream).unwrap().unwrap();
        wire::decode_response(&body).unwrap()
    };

    for len in 0..b_bytes.len() {
        let mut f = std::fs::File::create(&replacement).unwrap();
        f.write_all(&b_bytes[..len]).unwrap();
        drop(f);
        let resp = reload(&mut stream, replacement.display().to_string());
        assert_eq!(
            resp.status,
            wire::ERR_RELOAD_FAILED,
            "truncated prefix {len}/{} swapped in",
            b_bytes.len()
        );
        assert_eq!(handle.epoch(), 1, "epoch moved on a rolled-back reload");
    }

    // Daemon still answers for A after the whole gauntlet…
    let resp = wire::roundtrip(&mut stream, &wire::Request::ClusterOf(vec![0, 15])).unwrap();
    assert_eq!(resp.status, 0);

    // …and the intact replacement swaps in with an epoch bump.
    std::fs::write(&replacement, &b_bytes).unwrap();
    let resp = reload(&mut stream, replacement.display().to_string());
    assert_eq!(resp.status, 0, "intact snapshot refused");
    assert_eq!(&resp.body[..], &2u64.to_le_bytes());
    assert_eq!(handle.epoch(), 2);

    let stats = handle.stats();
    assert_eq!(stats.reloads_ok, 1);
    assert_eq!(stats.reloads_rolled_back, b_bytes.len() as u64);

    handle.shutdown();
    handle.join();
    std::fs::remove_dir_all(&dir).ok();
}
