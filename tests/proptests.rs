//! Property-based tests (proptest) over the DESIGN.md §6 invariants:
//! random graphs × random parameters, checking partition validity, theorem
//! bounds, diameter sandwiches, sketch semilattice laws, and MR primitive
//! equivalence with their sequential counterparts.

use pardec::prelude::*;
use proptest::prelude::*;

/// Strategy: a connected graph from one of the workspace families, with a
/// size small enough for exact verification.
fn connected_graph() -> impl Strategy<Value = CsrGraph> {
    prop_oneof![
        (2usize..14, 2usize..14).prop_map(|(r, c)| generators::mesh(r, c)),
        (20usize..200, 1u64..1000).prop_map(|(n, s)| {
            let g = generators::gnm(n, (n * 3 / 2).min(n * (n - 1) / 2), s);
            components::largest_component(&g).0
        }),
        (4usize..12, 1u64..1000).prop_map(|(side, s)| generators::road_network(side, side, 0.4, s)),
        (10usize..150, 1u64..1000).prop_map(|(n, s)| generators::preferential_attachment(
            n.max(4),
            3.min(n - 1),
            s
        )),
        (3usize..100).prop_map(generators::path),
        (3usize..60).prop_map(generators::cycle),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// CLUSTER always returns a valid partition into connected clusters,
    /// and its cluster count respects the Theorem 1 bound (with a generous
    /// constant).
    #[test]
    fn cluster_partition_valid(g in connected_graph(), tau in 1usize..8, seed in 0u64..1u64 << 40) {
        let r = cluster(&g, &ClusterParams::new(tau, seed));
        prop_assert!(r.clustering.validate(&g).is_ok(), "{:?}", r.clustering.validate(&g));
        let n = g.num_nodes().max(2);
        let logn = (n as f64).log2();
        let bound = (16.0 * tau as f64 * logn * logn).ceil() as usize + 8;
        prop_assert!(r.clustering.num_clusters() <= bound.max(n),
            "{} clusters exceeds bound {bound}", r.clustering.num_clusters());
    }

    /// CLUSTER2's radius respects Lemma 2 (`R_ALG2 ≤ 2·R_ALG·log n`) and the
    /// result is a valid partition.
    #[test]
    fn cluster2_partition_and_radius(g in connected_graph(), tau in 1usize..6, seed in 0u64..1u64 << 40) {
        let r = cluster2(&g, &ClusterParams::new(tau, seed));
        prop_assert!(r.clustering.validate(&g).is_ok());
        let n = g.num_nodes().max(2);
        let bound = (2.0 * r.r_alg.max(1) as f64 * (n as f64).log2()).ceil() as u32;
        prop_assert!(r.clustering.max_radius() <= bound,
            "R_ALG2 {} > bound {bound}", r.clustering.max_radius());
    }

    /// MPX returns a valid partition for any positive β.
    #[test]
    fn mpx_partition_valid(g in connected_graph(), beta in 0.01f64..4.0, seed in 0u64..1u64 << 40) {
        let r = mpx(&g, beta, seed);
        prop_assert!(r.clustering.validate(&g).is_ok());
    }

    /// The full diameter sandwich on arbitrary connected graphs:
    /// `Δ_C ≤ Δ ≤ Δ″ ≤ Δ′`.
    #[test]
    fn diameter_sandwich(g in connected_graph(), tau in 1usize..6, seed in 0u64..1u64 << 40) {
        let delta = diameter::apsp_diameter(&g) as u64;
        let a = approximate_diameter(&g, &DiameterParams::new(tau, seed));
        prop_assert!(a.lower_bound <= delta, "lb {} > Δ {delta}", a.lower_bound);
        let w = a.upper_bound_weighted.unwrap();
        prop_assert!(w >= delta, "Δ″ {w} < Δ {delta}");
        prop_assert!(w <= a.upper_bound, "Δ″ {w} > Δ′ {}", a.upper_bound);
    }

    /// Quotient graphs: an edge exists iff some graph edge crosses the two
    /// clusters; the weighted quotient's weights are achievable path
    /// lengths (≥ 1, ≤ 2·radius + 1).
    #[test]
    fn quotient_edge_iff_cut(g in connected_graph(), tau in 1usize..6, seed in 0u64..1u64 << 40) {
        let c = cluster(&g, &ClusterParams::new(tau, seed)).clustering;
        let q = c.quotient(&g);
        // Every graph edge is either intra-cluster or reflected in q.
        for (u, v) in g.edges() {
            let (cu, cv) = (c.assignment[u as usize], c.assignment[v as usize]);
            if cu != cv {
                prop_assert!(q.has_edge(cu, cv), "missing quotient edge ({cu}, {cv})");
            }
        }
        // Every quotient edge has a witness cut edge.
        for (a, b) in q.edges() {
            let witness = g.edges().any(|(u, v)| {
                let (cu, cv) = (c.assignment[u as usize], c.assignment[v as usize]);
                (cu, cv) == (a, b) || (cu, cv) == (b, a)
            });
            prop_assert!(witness, "spurious quotient edge ({a}, {b})");
        }
        let wq = c.weighted_quotient(&g);
        let rmax = c.max_radius() as u64;
        for u in 0..wq.num_nodes() as NodeId {
            for (_, w) in wq.neighbors(u) {
                prop_assert!(w >= 1 && w <= 2 * rmax + 1, "weight {w} outside [1, {}]", 2 * rmax + 1);
            }
        }
    }

    /// The distance oracle never underestimates (sampled sources).
    #[test]
    fn oracle_upper_bounds(g in connected_graph(), tau in 1usize..5, seed in 0u64..1u64 << 40) {
        let oracle = DistanceOracle::build(&g, tau, seed, pardec::core::diameter::Decomposition::Cluster);
        let truth = traversal::bfs(&g, 0).dist;
        for v in 0..g.num_nodes() as NodeId {
            prop_assert!(oracle.query(0, v) >= truth[v as usize] as u64);
        }
        prop_assert_eq!(oracle.query(0, 0), 0);
    }

    /// FM sketch semilattice laws on arbitrary item sets.
    #[test]
    fn fm_semilattice(xs in prop::collection::vec(any::<u64>(), 0..200),
                      ys in prop::collection::vec(any::<u64>(), 0..200),
                      seed in any::<u64>()) {
        let build = |items: &[u64]| {
            let mut s = FmSketch::new(8, seed);
            for &x in items { s.add(x); }
            s
        };
        let (a, b) = (build(&xs), build(&ys));
        // Commutativity.
        let mut ab = a.clone(); ab.merge(&b);
        let mut ba = b.clone(); ba.merge(&a);
        prop_assert_eq!(&ab, &ba);
        // Idempotence.
        let mut aa = a.clone(); aa.merge(&a);
        prop_assert_eq!(&aa, &a);
        // Merge = union of inserts.
        let mut union_items = xs.clone();
        union_items.extend_from_slice(&ys);
        prop_assert_eq!(&ab, &build(&union_items));
    }

    /// HLL estimates are within loose rigorous error bands and merges are
    /// monotone in the estimate.
    #[test]
    fn hll_estimate_and_merge(n in 1usize..3000, seed in any::<u64>()) {
        let mut s = HllSketch::new(10, seed);
        for x in 0..n as u64 { s.add(x); }
        let est = s.estimate();
        // precision 10 -> ~3.25% standard error; allow 10 sigma + small-n slack.
        let err = (est - n as f64).abs() / n as f64;
        prop_assert!(err < 0.35, "n = {n}, est = {est}");
        let mut bigger = s.clone();
        let mut extra = HllSketch::new(10, seed);
        for x in 0..(2 * n) as u64 { extra.add(x); }
        bigger.merge(&extra);
        prop_assert!(bigger.estimate() >= s.estimate() * 0.999);
    }

    /// MR sort and prefix sum match their sequential counterparts for any
    /// input.
    #[test]
    fn mr_primitives_equiv(items in prop::collection::vec(any::<u32>(), 0..2000), seed in any::<u64>()) {
        let mut eng = MrEngine::new(MrConfig::with_partitions(7));
        let got = pardec::mr::primitives::mr_sort(&mut eng, items.clone(), seed).unwrap();
        let mut expect = items.clone();
        expect.sort();
        prop_assert_eq!(got, expect);

        let values: Vec<u64> = items.iter().map(|&x| (x % 1000) as u64).collect();
        let got = pardec::mr::primitives::mr_prefix_sum(&mut eng, values.clone()).unwrap();
        let mut acc = 0u64;
        for (i, &v) in values.iter().enumerate() {
            prop_assert_eq!(got[i], acc);
            acc += v;
        }
    }

    /// MR BFS equals sequential BFS on arbitrary (also disconnected) graphs.
    #[test]
    fn mr_bfs_equiv(n in 1usize..120, m in 0usize..240, seed in any::<u64>()) {
        let m = m.min(n * (n - 1) / 2);
        let g = generators::gnm(n, m, seed);
        let seq = traversal::bfs(&g, 0);
        let mr = pardec::mr::algo::mr_bfs(&g, 0);
        prop_assert_eq!(mr.values, seq.dist);
    }

    /// Gonzalez radius is monotone nonincreasing in k, and the k-center
    /// objective matches a direct multi-source BFS.
    #[test]
    fn gonzalez_monotone(g in connected_graph(), seed in 0u64..1u64 << 40) {
        let n = g.num_nodes();
        prop_assume!(n >= 3);
        let r1 = gonzalez(&g, 1, seed).unwrap();
        let r2 = gonzalez(&g, (n / 2).max(2), seed).unwrap();
        prop_assert!(r2.radius <= r1.radius);
        prop_assert_eq!(
            r1.radius,
            pardec::core::kcenter::kcenter_objective(&g, &r1.centers)
        );
    }
}
