//! Property tests for the parallel contraction kernel: arbitrary graphs ×
//! arbitrary labelings, asserting that every kernel-built contraction path
//! is **byte-for-byte** equal to its retained seed-era sequential reference
//! (`pardec_graph::naive`) — and that outputs are identical on a 1-thread
//! and a 4-thread pool.
//!
//! The naive implementations are the executable spec: a sort-and-`dedup`
//! builder, `HashMap` min-combine for the weighted quotient, `HashMap`
//! sum-combine for contraction multiplicities. The kernel must reproduce
//! their canonical CSR arrays exactly, not just isomorphically.

use pardec::prelude::*;
use pardec_graph::{combine, naive};
use proptest::prelude::*;
use proptest::strategy::Just;

/// An arbitrary (possibly disconnected, duplicate- and loop-ridden) edge
/// list over `n` nodes, plus a labeling into `k` clusters and per-node
/// center distances. Raw draws are reduced modulo `n`/`k`, which keeps the
/// shim's independent-strategy model while still covering every shape.
fn labelled_graph() -> impl Strategy<Value = (CsrGraph, Vec<NodeId>, Vec<u32>, usize)> {
    const MAX_N: usize = 40;
    (
        1usize..MAX_N,
        1usize..10,
        proptest::collection::vec((any::<u32>(), any::<u32>()), 0..250),
        proptest::collection::vec(any::<u32>(), MAX_N..MAX_N + 1),
        proptest::collection::vec(0u32..50, MAX_N..MAX_N + 1),
    )
        .prop_map(|(n, k, edges, labels, dists)| {
            let edges: Vec<(NodeId, NodeId)> = edges
                .into_iter()
                .map(|(u, v)| ((u as usize % n) as NodeId, (v as usize % n) as NodeId))
                .collect();
            let labels: Vec<NodeId> = labels[..n]
                .iter()
                .map(|&l| (l as usize % k) as NodeId)
                .collect();
            let dists = dists[..n].to_vec();
            let g = GraphBuilder::new(n).add_edges(edges).build();
            (g, labels, dists, k)
        })
}

fn on_pool<T: Send>(threads: usize, f: impl Fn() -> T + Sync + Send) -> T {
    rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("pool construction cannot fail")
        .install(f)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// `GraphBuilder::build` (kernel symmetrize + dedup scatter) equals the
    /// seed-era sort-dedup build on arbitrary edge soups, at both pool
    /// sizes.
    #[test]
    fn builder_build_equals_naive(
        n in 1usize..60,
        edges in proptest::collection::vec((0u32..60, 0u32..60), 0..300),
        threads in prop_oneof![Just(1usize), Just(4usize)],
    ) {
        let edges: Vec<(NodeId, NodeId)> = edges
            .into_iter()
            .map(|(u, v)| (u % n as NodeId, v % n as NodeId))
            .collect();
        let expected = naive::build_csr(n, &edges);
        let built = on_pool(threads, || {
            GraphBuilder::new(n).add_edges(edges.clone()).build()
        });
        prop_assert_eq!(&built, &expected);
        prop_assert!(built.check_invariants().is_ok());
    }

    /// Kernel quotient ≡ naive quotient, byte-for-byte.
    #[test]
    fn quotient_equals_naive(
        input in labelled_graph(),
        threads in prop_oneof![Just(1usize), Just(4usize)],
    ) {
        let (g, labels, _dists, k) = input;
        let expected = naive::quotient(&g, &labels, k);
        let got = on_pool(threads, || quotient::quotient(&g, &labels, k));
        prop_assert_eq!(&got, &expected);
        // The kernel ledger accounts every undirected cut edge.
        let (_, stats) = quotient::quotient_with_stats(&g, &labels, k);
        prop_assert_eq!(stats.input_pairs, quotient::cut_size(&g, &labels));
        prop_assert_eq!(stats.output_pairs, got.num_edges());
    }

    /// Kernel weighted quotient ≡ naive HashMap min-combine, byte-for-byte
    /// (offsets, targets, and weights all compared via `WeightedGraph: Eq`).
    #[test]
    fn weighted_quotient_equals_naive(
        input in labelled_graph(),
        threads in prop_oneof![Just(1usize), Just(4usize)],
    ) {
        let (g, labels, dists, k) = input;
        let expected = naive::weighted_quotient(&g, &labels, &dists, k);
        let got = on_pool(threads, || {
            quotient::weighted_quotient(&g, &labels, &dists, k)
        });
        prop_assert_eq!(got, expected);
    }

    /// Kernel contraction ≡ naive contraction: contracted graph, node
    /// weights, sorted multiplicity entries, and internal-edge mass.
    #[test]
    fn contract_equals_naive(
        input in labelled_graph(),
        threads in prop_oneof![Just(1usize), Just(4usize)],
    ) {
        let (g, labels, _dists, k) = input;
        let expected = naive::contract(&g, &labels, k);
        let got = on_pool(threads, || pardec_graph::contract::contract(&g, &labels, k));
        prop_assert_eq!(&got, &expected);
        // Mass conservation, as the seed tests checked via the HashMap.
        let cut: u64 = got.edge_multiplicity.values().sum();
        prop_assert_eq!(cut + got.internal_edges, g.num_edges() as u64);
    }

    /// Parallel `cut_size` ≡ the sequential filter-count it replaced.
    #[test]
    fn cut_size_equals_naive(input in labelled_graph()) {
        let (g, labels, _dists, _k) = input;
        prop_assert_eq!(
            quotient::cut_size(&g, &labels),
            naive::cut_size(&g, &labels)
        );
    }

    /// The raw kernel against a sequential sort + fold oracle, over
    /// arbitrary key/value multisets and both fold families the contraction
    /// paths use (min and sum).
    #[test]
    fn combine_by_key_equals_sorted_fold_oracle(
        pairs in proptest::collection::vec((0u64..500, 0u64..1000), 0..600),
        use_min in any::<bool>(),
        threads in prop_oneof![Just(1usize), Just(4usize)],
    ) {
        let fold = move |a: (u64, u64), b: (u64, u64)| {
            (a.0, if use_min { a.1.min(b.1) } else { a.1 + b.1 })
        };
        let mut expected = pairs.clone();
        expected.sort_by_key(|p| p.0);
        let mut folded: Vec<(u64, u64)> = Vec::new();
        for p in expected {
            match folded.last_mut() {
                Some(last) if last.0 == p.0 => *last = fold(*last, p),
                _ => folded.push(p),
            }
        }
        let (got, stats) = on_pool(threads, || {
            combine::combine_by_key(pairs.clone(), 500, |p| p.0, fold)
        });
        prop_assert_eq!(&got, &folded);
        prop_assert_eq!(stats.input_pairs, pairs.len());
        prop_assert_eq!(stats.output_pairs, got.len());
    }
}
