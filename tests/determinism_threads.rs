//! The runtime's headline guarantee, asserted end-to-end: for a fixed seed,
//! decomposition, diameter approximation, and HADI produce **byte-identical**
//! results on a 1-thread pool and on a 4-thread pool.
//!
//! This holds because the rayon shim splits reductions by input length only
//! (the merge tree never consults the worker count) and merges partial
//! results left-to-right, and because every racy claim in the algorithms
//! (CAS frontier claims, `fetch_min` cluster proposals) is value-determinate
//! regardless of which thread wins.

use pardec::prelude::*;

/// Runs `f` once inside a 1-thread pool and once inside a 4-thread pool and
/// returns both outputs, rendered to bytes via `Debug`.
fn on_both_pools<T: std::fmt::Debug + Send>(f: impl Fn() -> T + Sync + Send) -> (String, String) {
    let run = |threads: usize| {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("pool construction cannot fail");
        let out = pool.install(&f);
        format!("{out:?}")
    };
    (run(1), run(4))
}

fn workload_graphs() -> Vec<(&'static str, CsrGraph)> {
    vec![
        (
            "powerlaw",
            generators::windowed_preferential_attachment(6_000, 6, 0.025, 11),
        ),
        ("road", generators::road_network(45, 45, 0.4, 12)),
        ("mesh", generators::mesh(60, 55)),
    ]
}

#[test]
fn decompose_is_byte_identical_across_pool_sizes() {
    for (name, g) in workload_graphs() {
        let (one, four) = on_both_pools(|| {
            let r = cluster(&g, &ClusterParams::new(8, 42));
            (
                r.clustering.assignment.clone(),
                r.clustering.dist_to_center.clone(),
                r.clustering.num_clusters(),
            )
        });
        assert_eq!(one, four, "cluster() diverged on {name}");

        let (one, four) = on_both_pools(|| {
            let r = cluster2(&g, &ClusterParams::new(8, 42));
            r.clustering.assignment.clone()
        });
        assert_eq!(one, four, "cluster2() diverged on {name}");
    }
}

#[test]
fn diameter_is_byte_identical_across_pool_sizes() {
    for (name, g) in workload_graphs() {
        let (one, four) = on_both_pools(|| {
            let a = approximate_diameter(&g, &DiameterParams::new(8, 42));
            (
                a.lower_bound,
                a.estimate(),
                a.radius,
                a.quotient_nodes,
                // The contraction-kernel ledger is part of the contract too:
                // cut-arc and combined-arc counts must not depend on pool
                // size.
                a.quotient_kernel,
            )
        });
        assert_eq!(one, four, "approximate_diameter() diverged on {name}");
    }
}

/// The contraction kernel end-to-end: quotient, weighted quotient, and
/// contraction of a real decomposition are byte-identical across pool
/// sizes — CSR arrays, weights, multiplicities, and the kernel ledger.
#[test]
fn quotient_is_byte_identical_across_pool_sizes() {
    for (name, g) in workload_graphs() {
        let labels_and_dist = {
            let r = cluster(&g, &ClusterParams::new(8, 42));
            (
                r.clustering.assignment.clone(),
                r.clustering.dist_to_center.clone(),
                r.clustering.num_clusters(),
            )
        };
        let (labels, dist, k) = &labels_and_dist;
        let (one, four) = on_both_pools(|| {
            let (q, qs) = pardec::graph::quotient::quotient_with_stats(&g, labels, *k);
            let (wq, ws) =
                pardec::graph::quotient::weighted_quotient_with_stats(&g, labels, dist, *k);
            let c = pardec::graph::contract::contract(&g, labels, *k);
            let cut = pardec::graph::quotient::cut_size(&g, labels);
            (q, qs, wq, ws, c, cut)
        });
        assert_eq!(one, four, "quotient machinery diverged on {name}");
    }
}

/// Baswana–Sen spanner construction (sequential phase loops + kernel CSR
/// build) is byte-identical across pool sizes.
#[test]
fn spanner_is_byte_identical_across_pool_sizes() {
    for (name, g) in workload_graphs() {
        for k in [2usize, 3] {
            let (one, four) = on_both_pools(|| {
                let s = pardec::graph::spanner::baswana_sen(&g, k, 42);
                (s.graph, s.stretch)
            });
            assert_eq!(one, four, "baswana_sen(k={k}) diverged on {name}");
        }
    }
}

#[test]
fn mpx_is_byte_identical_across_pool_sizes() {
    for (name, g) in workload_graphs() {
        let (one, four) = on_both_pools(|| {
            let r = mpx(&g, 0.15, 42);
            (r.clustering, r.steps)
        });
        assert_eq!(one, four, "mpx() diverged on {name}");
    }
}

#[test]
fn weighted_cluster_is_byte_identical_across_pool_sizes() {
    for (name, g) in workload_graphs() {
        // Derive deterministic weights from the unweighted workload graph.
        let edges: Vec<(NodeId, NodeId, u64)> = g
            .edges()
            .map(|(u, v)| (u, v, u64::from((u * 31 + v) % 7) + 1))
            .collect();
        let wg = WeightedGraph::from_edges(g.num_nodes(), &edges);
        let (one, four) = on_both_pools(|| weighted_cluster(&wg, &ClusterParams::new(4, 42)));
        assert_eq!(one, four, "weighted_cluster() diverged on {name}");
    }
}

fn weighted_workload_graphs() -> Vec<(&'static str, WeightedGraph)> {
    workload_graphs()
        .into_iter()
        .map(|(name, g)| {
            let edges: Vec<(NodeId, NodeId, u64)> = g
                .edges()
                .map(|(u, v)| (u, v, u64::from((u * 31 + v) % 7) + 1))
                .collect();
            (name, WeightedGraph::from_edges(g.num_nodes(), &edges))
        })
        .collect()
}

/// The weighted pipeline's full invariance matrix: the engine-backed
/// `weighted_cluster` equals the retained sequential heap oracle
/// (`weighted_cluster::naive`) byte for byte, on a 1-thread and a 4-thread
/// pool, at every bucket width δ — outputs must depend on neither the pool
/// size nor `--delta`.
#[test]
fn weighted_cluster_is_delta_and_pool_invariant() {
    use pardec::core::weighted_cluster::naive;
    for (name, wg) in weighted_workload_graphs() {
        let oracle = naive::weighted_cluster(&wg, &ClusterParams::new(4, 42));
        for delta in [1u64, 3, 1000] {
            let params = ClusterParams::new(4, 42).with_delta(delta);
            let (one, four) = on_both_pools(|| weighted_cluster(&wg, &params));
            assert_eq!(
                format!("{oracle:?}"),
                one,
                "engine (1 thread, delta={delta}) diverged from naive on {name}"
            );
            assert_eq!(
                one, four,
                "weighted_cluster(delta={delta}) diverged across pools on {name}"
            );
        }
    }
}

/// `weighted_diameter` (decomposition + weighted quotient + APSP + double
/// sweep) is byte-identical across pool sizes and bucket widths. The trace
/// records δ and the bucket count, which legitimately vary with δ, so the
/// row compares everything else.
#[test]
fn weighted_diameter_is_delta_and_pool_invariant() {
    for (name, wg) in weighted_workload_graphs() {
        let mut rows = Vec::new();
        for delta in [1u64, 3, 1000] {
            let params = ClusterParams::new(4, 42).with_delta(delta);
            let (one, four) = on_both_pools(|| {
                let a = weighted_diameter(&wg, &params);
                (
                    a.lower_bound,
                    a.upper_bound,
                    a.weighted_radius,
                    a.hop_radius,
                    a.quotient_nodes,
                    a.quotient_edges,
                    a.quotient_kernel,
                    a.clustering,
                )
            });
            assert_eq!(
                one, four,
                "weighted_diameter(delta={delta}) diverged across pools on {name}"
            );
            rows.push(one);
        }
        for row in &rows {
            assert_eq!(
                &rows[0], row,
                "weighted_diameter bounds depend on delta on {name}"
            );
        }
    }
}

/// The frontier engine's full contract in one matrix: for every strategy,
/// 1-thread and 4-thread pools agree, and all strategies agree with each
/// other — over raw multi-source BFS and over the full decomposition.
#[test]
fn frontier_strategies_byte_identical_across_pool_sizes() {
    use pardec::graph::frontier::{multi_source_bfs, FrontierStrategy};
    for (name, g) in workload_graphs() {
        let n = g.num_nodes() as NodeId;
        let sources: Vec<NodeId> = (0..16).map(|i| i * (n / 16)).collect();
        let mut bfs_outputs = Vec::new();
        let mut cluster_outputs = Vec::new();
        for strategy in FrontierStrategy::ALL {
            let (one, four) = on_both_pools(|| {
                let (r, owner) = multi_source_bfs(&g, &sources, strategy);
                (r.dist, owner, r.visited, r.levels)
            });
            assert_eq!(one, four, "msbfs/{strategy} diverged on {name}");
            bfs_outputs.push(one);

            let (one, four) = on_both_pools(|| {
                let r = cluster(&g, &ClusterParams::new(8, 42).with_frontier(strategy));
                r.clustering
            });
            assert_eq!(one, four, "cluster/{strategy} diverged on {name}");
            cluster_outputs.push(one);
        }
        for (output, strategy) in bfs_outputs.iter().zip(FrontierStrategy::ALL) {
            assert_eq!(
                &bfs_outputs[0], output,
                "msbfs strategies disagree on {name} ({strategy} vs topdown)"
            );
        }
        for (output, strategy) in cluster_outputs.iter().zip(FrontierStrategy::ALL) {
            assert_eq!(
                &cluster_outputs[0], output,
                "cluster strategies disagree on {name} ({strategy} vs topdown)"
            );
        }
    }
}

/// The compressed backend's determinism contract: the graph representation
/// is a memory knob only. For every workload graph, `cluster()` and
/// `approximate_diameter()` produce byte-identical output across the full
/// `{plain, compressed} × {1 thread, 4 threads}` matrix — the gap-decoded
/// neighbor stream feeds the exact same frontier waves as the plain arrays.
#[test]
fn backends_are_byte_identical_across_pool_sizes() {
    for (name, g) in workload_graphs() {
        let reprs = [
            ("plain", GraphRepr::Plain(g.clone())),
            ("compressed", GraphRepr::Compressed(CcsrGraph::from_csr(&g))),
        ];
        let mut rows: Vec<(String, String, String)> = Vec::new();
        for (backend, repr) in &reprs {
            let (one, four) = on_both_pools(|| {
                let r = cluster(repr, &ClusterParams::new(8, 42));
                let d = approximate_diameter(repr, &DiameterParams::new(8, 42));
                (
                    r.clustering,
                    r.trace,
                    d.lower_bound,
                    d.estimate(),
                    d.radius,
                    d.quotient_nodes,
                    d.quotient_kernel,
                )
            });
            assert_eq!(
                one, four,
                "{backend} backend diverged across pool sizes on {name}"
            );
            rows.push((backend.to_string(), one, four));
        }
        for (backend, one, four) in &rows[1..] {
            assert_eq!(
                &rows[0].1, one,
                "{backend} (1 thread) diverged from plain on {name}"
            );
            assert_eq!(
                &rows[0].2, four,
                "{backend} (4 threads) diverged from plain on {name}"
            );
        }
    }
}

/// The MR emulation after the radix-shuffle + combiner refactor: for a
/// fixed seed, `mr_cluster` and `mr_hadi` (the Table 4 competitors that run
/// on [`pardec::mr::VertexEngine`]) produce byte-identical results on a
/// 1-thread and a 4-thread pool — even though the *default* partition count
/// is pool-size dependent (4 × threads): the map-side combiner is
/// commutative and associative, so neither the chunk grid nor the thread
/// interleaving can reach the outputs. A generic radix round is covered by
/// `tests/proptests_mr.rs`.
#[test]
fn mr_cluster_is_byte_identical_across_pool_sizes() {
    use pardec::core::mr_impl::mr_cluster;
    for (name, g) in workload_graphs() {
        let (one, four) = on_both_pools(|| {
            let r = mr_cluster(&g, &ClusterParams::new(8, 42));
            (r.clustering, r.supersteps, r.trace)
        });
        assert_eq!(one, four, "mr_cluster() diverged on {name}");
    }
}

#[test]
fn mr_hadi_is_byte_identical_across_pool_sizes() {
    use pardec::core::hadi::mr_hadi;
    for (name, g) in workload_graphs() {
        let (one, four) = on_both_pools(|| {
            let mut p = HadiParams::new(3);
            p.trials = 8;
            // The full estimator output, including the f64 neighbourhood
            // sums only the fixed merge tree keeps stable.
            let (r, stats) = mr_hadi(&g, &p);
            (r, stats.total_map_pairs())
        });
        assert_eq!(one, four, "mr_hadi() diverged on {name}");
    }
}

/// Explicit partition counts (including the odd `3` that CI pins via
/// `PARDEC_PARTITIONS`) never change MR results either.
#[test]
fn mr_cluster_is_partition_count_invariant() {
    use pardec::core::mr_impl::mr_cluster_with;
    use pardec::mr::MrConfig;
    let g = generators::windowed_preferential_attachment(3_000, 6, 0.025, 11);
    let reference = mr_cluster_with(
        &g,
        &ClusterParams::new(8, 42),
        &MrConfig::with_partitions(1),
    );
    for partitions in [2usize, 3, 7, 16] {
        let r = mr_cluster_with(
            &g,
            &ClusterParams::new(8, 42),
            &MrConfig::with_partitions(partitions),
        );
        assert_eq!(
            r.clustering, reference.clustering,
            "clustering diverged at {partitions} partitions"
        );
        assert_eq!(r.supersteps, reference.supersteps);
    }
}

#[test]
fn hadi_is_byte_identical_across_pool_sizes() {
    for (name, g) in workload_graphs() {
        let (one, four) = on_both_pools(|| {
            // The full result — including the f64 neighbourhood-function
            // estimates, the part only the fixed merge tree can keep stable.
            hadi(&g, &HadiParams::new(3))
        });
        assert_eq!(one, four, "hadi() diverged on {name}");
    }
}

#[test]
fn parallel_bfs_matches_sequential_bfs_on_a_real_pool() {
    let g = generators::windowed_preferential_attachment(4_000, 6, 0.025, 5);
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(4)
        .build()
        .expect("pool construction cannot fail");
    let seq = pardec::graph::traversal::bfs(&g, 0);
    let par = pool.install(|| pardec::graph::traversal::bfs_parallel(&g, 0));
    assert_eq!(seq.dist, par.dist);
    assert_eq!(seq.visited, par.visited);
    assert_eq!(seq.levels, par.levels);
}

/// The observability layer's hard constraint, end-to-end: cluster,
/// diameter, and the serve execute path produce **byte-identical** outputs
/// with tracing enabled and disabled, at 1 and 4 threads. Tracing is a pure
/// side channel — spans and metrics buffer per thread and never feed back
/// into any algorithm.
#[test]
fn tracing_on_off_is_byte_identical_across_pool_sizes() {
    use pardec::core::wire;
    use pardec::obs;

    let g = generators::road_network(30, 30, 0.4, 9);
    let n = g.num_nodes() as u32;

    let run_all = || {
        let r = cluster(&g, &ClusterParams::new(8, 42));
        let d = approximate_diameter(&g, &DiameterParams::new(8, 42));
        let session = Session::build(
            g.clone(),
            &SessionParams::new(6, 42).with_frontier(FrontierStrategy::TopDown),
        );
        let responses: Vec<Vec<u8>> = [
            wire::Request::Info,
            wire::Request::Distance((0..64).map(|i| (i % n, (i * 31 + 7) % n)).collect()),
            wire::Request::ClusterOf((0..64).map(|i| (i * 13) % n).collect()),
            wire::Request::Eccentricity((0..16).map(|i| (i * 17 + 3) % n).collect()),
            wire::Request::Nearest {
                sources: (0..8).map(|i| (i * 53) % n).collect(),
                probes: (0..64).map(|i| (i * 7 + 1) % n).collect(),
            },
        ]
        .iter()
        .map(|req| wire::execute(&session, req))
        .collect();
        (r.clustering, d.lower_bound, d.estimate(), responses)
    };

    for threads in [1usize, 4] {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("pool construction cannot fail");
        obs::disable();
        let off = format!("{:?}", pool.install(run_all));
        obs::enable();
        let on = format!("{:?}", pool.install(run_all));
        obs::disable();
        let events = obs::drain();
        assert!(
            !events.is_empty(),
            "tracing was enabled but recorded no events at {threads} threads"
        );
        assert_eq!(off, on, "tracing perturbed results at {threads} threads");
    }
}

#[test]
fn serve_responses_are_byte_identical_across_pool_sizes() {
    // The serve daemon's determinism contract: the exact response bytes —
    // results, ledger counts, everything after the strategy byte — are
    // independent of the worker-pool size the queries execute on.
    use pardec::core::wire;

    let g = generators::road_network(30, 30, 0.4, 9);
    let n = g.num_nodes() as u32;
    let session = Session::build(
        g,
        &SessionParams::new(6, 42).with_frontier(FrontierStrategy::TopDown),
    );

    let requests = [
        wire::Request::Info,
        wire::Request::Distance((0..256).map(|i| (i % n, (i * 31 + 7) % n)).collect()),
        wire::Request::ClusterOf((0..256).map(|i| (i * 13) % n).collect()),
        wire::Request::Eccentricity((0..64).map(|i| (i * 17 + 3) % n).collect()),
        wire::Request::Nearest {
            sources: (0..16).map(|i| (i * 53) % n).collect(),
            probes: (0..256).map(|i| (i * 7 + 1) % n).collect(),
        },
    ];

    let (one, four) = on_both_pools(|| {
        requests
            .iter()
            .map(|req| wire::execute(&session, req))
            .collect::<Vec<Vec<u8>>>()
    });
    assert_eq!(one, four, "serve responses diverged across pool sizes");

    // And the 256-probe NEAREST batch is answered by exactly one wave.
    let resp = pardec::core::wire::decode_response(&wire::execute(&session, &requests[4])).unwrap();
    assert_eq!(resp.status, 0);
    assert_eq!(resp.waves, 1, "a batch must run as one multi-source wave");
    assert_eq!(resp.batch, 256);
    assert!(resp.wave_rounds >= 1);
}
