//! The runtime's headline guarantee, asserted end-to-end: for a fixed seed,
//! decomposition, diameter approximation, and HADI produce **byte-identical**
//! results on a 1-thread pool and on a 4-thread pool.
//!
//! This holds because the rayon shim splits reductions by input length only
//! (the merge tree never consults the worker count) and merges partial
//! results left-to-right, and because every racy claim in the algorithms
//! (CAS frontier claims, `fetch_min` cluster proposals) is value-determinate
//! regardless of which thread wins.

use pardec::prelude::*;

/// Runs `f` once inside a 1-thread pool and once inside a 4-thread pool and
/// returns both outputs, rendered to bytes via `Debug`.
fn on_both_pools<T: std::fmt::Debug + Send>(f: impl Fn() -> T + Sync + Send) -> (String, String) {
    let run = |threads: usize| {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("pool construction cannot fail");
        let out = pool.install(&f);
        format!("{out:?}")
    };
    (run(1), run(4))
}

fn workload_graphs() -> Vec<(&'static str, CsrGraph)> {
    vec![
        (
            "powerlaw",
            generators::windowed_preferential_attachment(6_000, 6, 0.025, 11),
        ),
        ("road", generators::road_network(45, 45, 0.4, 12)),
        ("mesh", generators::mesh(60, 55)),
    ]
}

#[test]
fn decompose_is_byte_identical_across_pool_sizes() {
    for (name, g) in workload_graphs() {
        let (one, four) = on_both_pools(|| {
            let r = cluster(&g, &ClusterParams::new(8, 42));
            (
                r.clustering.assignment.clone(),
                r.clustering.dist_to_center.clone(),
                r.clustering.num_clusters(),
            )
        });
        assert_eq!(one, four, "cluster() diverged on {name}");

        let (one, four) = on_both_pools(|| {
            let r = cluster2(&g, &ClusterParams::new(8, 42));
            r.clustering.assignment.clone()
        });
        assert_eq!(one, four, "cluster2() diverged on {name}");
    }
}

#[test]
fn diameter_is_byte_identical_across_pool_sizes() {
    for (name, g) in workload_graphs() {
        let (one, four) = on_both_pools(|| {
            let a = approximate_diameter(&g, &DiameterParams::new(8, 42));
            (a.lower_bound, a.estimate(), a.radius, a.quotient_nodes)
        });
        assert_eq!(one, four, "approximate_diameter() diverged on {name}");
    }
}

#[test]
fn hadi_is_byte_identical_across_pool_sizes() {
    for (name, g) in workload_graphs() {
        let (one, four) = on_both_pools(|| {
            // The full result — including the f64 neighbourhood-function
            // estimates, the part only the fixed merge tree can keep stable.
            hadi(&g, &HadiParams::new(3))
        });
        assert_eq!(one, four, "hadi() diverged on {name}");
    }
}

#[test]
fn parallel_bfs_matches_sequential_bfs_on_a_real_pool() {
    let g = generators::windowed_preferential_attachment(4_000, 6, 0.025, 5);
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(4)
        .build()
        .expect("pool construction cannot fail");
    let seq = pardec::graph::traversal::bfs(&g, 0);
    let par = pool.install(|| pardec::graph::traversal::bfs_parallel(&g, 0));
    assert_eq!(seq.dist, par.dist);
    assert_eq!(seq.visited, par.visited);
    assert_eq!(seq.levels, par.levels);
}
