//! Cross-crate integration tests: the full §4 pipeline (generate → cluster
//! → quotient → diameter bounds), the k-center stack, and the distance
//! oracle, exercised end-to-end through the facade crate.

use pardec::core::diameter::Decomposition;
use pardec::prelude::*;

/// The diameter sandwich `Δ_C ≤ Δ ≤ Δ″ ≤ Δ′` holds across graph families,
/// decompositions, and seeds.
#[test]
fn diameter_sandwich_across_families() {
    let cases: Vec<(&str, CsrGraph)> = vec![
        ("mesh", generators::mesh(25, 30)),
        ("torus", generators::torus(20, 20)),
        ("road", generators::road_network(25, 25, 0.4, 3)),
        (
            "social",
            generators::windowed_preferential_attachment(3000, 5, 0.05, 4),
        ),
        ("lollipop", generators::lollipop(600, 4, 150, 5)),
        ("gnm-lcc", {
            let (lc, _) = components::largest_component(&generators::gnm(800, 1200, 6));
            lc
        }),
    ];
    for (name, g) in &cases {
        let delta = diameter::exact_diameter(g) as u64;
        for seed in 0..2 {
            for decomposition in [Decomposition::Cluster, Decomposition::Cluster2] {
                let mut p = DiameterParams::new(4, seed);
                p.decomposition = decomposition;
                let a = approximate_diameter(g, &p);
                a.clustering
                    .validate(g)
                    .unwrap_or_else(|e| panic!("{name}: {e}"));
                assert!(
                    a.lower_bound <= delta,
                    "{name}: lb {} > Δ {delta}",
                    a.lower_bound
                );
                let w = a.upper_bound_weighted.expect("weighted on");
                assert!(w >= delta, "{name}: Δ″ {w} < Δ {delta}");
                assert!(w <= a.upper_bound, "{name}: Δ″ {w} > Δ′ {}", a.upper_bound);
            }
        }
    }
}

/// Shared-memory CLUSTER, MR CLUSTER, and CLUSTER2 all produce valid
/// partitions whose quotient reconnects the graph.
#[test]
fn decomposition_implementations_agree_structurally() {
    let g = generators::road_network(30, 30, 0.4, 9);
    let sm = cluster(&g, &ClusterParams::new(4, 1));
    let mr = pardec::core::mr_impl::mr_cluster(&g, &ClusterParams::new(4, 1));
    let c2 = cluster2(&g, &ClusterParams::new(4, 1));
    for (name, c) in [
        ("shared-memory", &sm.clustering),
        ("mr", &mr.clustering),
        ("cluster2", &c2.clustering),
    ] {
        c.validate(&g).unwrap_or_else(|e| panic!("{name}: {e}"));
        // The quotient of a connected graph is connected.
        let q = c.quotient(&g);
        assert!(
            components::is_connected(&q),
            "{name}: quotient disconnected"
        );
    }
}

/// k-center: both solvers return feasible solutions whose objective is
/// consistent, with the CLUSTER-based one within its theory bound of the
/// Gonzalez baseline.
#[test]
fn kcenter_stack() {
    let g = generators::mesh(25, 25);
    let k = 12;
    let ours = kcenter(&g, k, 3).unwrap();
    let base = gonzalez(&g, k, 3).unwrap();
    assert!(ours.centers.len() <= k);
    assert_eq!(base.centers.len(), k);
    assert!(ours.radius >= base.radius / 2); // any feasible ≥ OPT ≥ gz/2
    let logn = (g.num_nodes() as f64).log2();
    assert!(
        (ours.radius as f64) <= base.radius as f64 * logn * logn,
        "radius {} vs gonzalez {}",
        ours.radius,
        base.radius
    );
}

/// The oracle never underestimates, and reuses a diameter run's clustering.
#[test]
fn oracle_from_diameter_run() {
    let g = generators::road_network(20, 20, 0.3, 5);
    let a = approximate_diameter(&g, &DiameterParams::new(4, 9));
    let oracle = DistanceOracle::from_clustering(&g, &a.clustering);
    let truth = traversal::bfs(&g, 0).dist;
    for v in (0..g.num_nodes() as NodeId).step_by(11) {
        let q = oracle.query(0, v);
        assert!(q >= truth[v as usize] as u64);
        // The oracle bound relates to the diameter estimate.
        assert!(q <= a.estimate() + 2 * a.radius as u64);
    }
}

/// Sketches + graph: per-node FM sketches merged along a BFS tree count the
/// reachable set (cross-crate use of pardec-sketch with pardec-graph).
#[test]
fn sketch_counts_reachable_set() {
    let _g = generators::disjoint_union(&generators::mesh(12, 12), &generators::cycle(30));
    let mut acc = FmSketch::new(64, 3);
    // Merge singleton sketches of the mesh component only.
    for v in 0..144u32 {
        let mut s = FmSketch::new(64, 3);
        s.add(v as u64);
        acc.merge(&s);
    }
    let est = acc.estimate();
    assert!((72.0..288.0).contains(&est), "estimate {est} for true 144");
}

/// Graph I/O round trip through the facade: a generated workload survives
/// text and binary serialization.
#[test]
fn io_round_trip() {
    let g = generators::windowed_preferential_attachment(500, 4, 0.1, 8);
    let mut text = Vec::new();
    io::write_edge_list(&g, &mut text).unwrap();
    let g2 = io::read_edge_list(&mut std::io::BufReader::new(&text[..])).unwrap();
    assert_eq!(g, g2);
    let mut bin = Vec::new();
    io::save_binary(&g, &mut bin).unwrap();
    assert_eq!(io::load_binary(&bin).unwrap(), g);
}

/// Figure 1's structural claim: appending a chain of length L to a
/// small-diameter graph leaves CLUSTER's growth-step count (parallel depth)
/// essentially unchanged while BFS depth grows by Θ(L).
#[test]
fn chain_append_depth_contrast() {
    let base = generators::windowed_preferential_attachment(4000, 6, 0.05, 2);
    let delta = diameter::exact_diameter(&base) as usize;
    let long = generators::append_chain(&base, 0, 10 * delta);

    let steps_base = cluster(&base, &ClusterParams::new(2, 7))
        .trace
        .total_growth_steps();
    let steps_long = cluster(&long, &ClusterParams::new(2, 7))
        .trace
        .total_growth_steps();
    assert!(
        steps_long <= 3 * steps_base + 10,
        "CLUSTER depth grew with the chain: {steps_base} -> {steps_long}"
    );

    let bfs_base = traversal::bfs(&base, 1).levels as usize;
    let bfs_long = traversal::bfs(&long, 1).levels as usize;
    assert!(
        bfs_long >= bfs_base + 9 * delta,
        "BFS depth must track the chain: {bfs_base} -> {bfs_long}"
    );
}
