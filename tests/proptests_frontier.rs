//! Property tests for the frontier engine's equivalence contract: on
//! arbitrary generated graphs (connected or not) and arbitrary source sets
//! (duplicates allowed), all three expansion strategies must produce
//! identical `dist`/`owner` arrays, and multi-source BFS must equal the
//! per-source sequential-BFS minimum oracle — distance-wise *and*
//! owner-wise (smallest source index among the nearest sources wins).
//!
//! `traversal::bfs` is deliberately kept as a direct queue-based
//! implementation, independent of the engine, precisely so it can serve as
//! the trusted oracle here.

use pardec::graph::frontier::{multi_source_bfs, single_source_bfs, FrontierStrategy};
use pardec::prelude::*;
use proptest::prelude::*;

/// An arbitrary graph from the workspace families — deliberately *not*
/// restricted to connected graphs: unreachable nodes must come out as
/// `INFINITE_DIST`/`INVALID_NODE` under every strategy.
fn arbitrary_graph() -> impl Strategy<Value = CsrGraph> {
    prop_oneof![
        (2usize..11, 2usize..11).prop_map(|(r, c)| generators::mesh(r, c)),
        (2usize..120, 0usize..200, 1u64..1000).prop_map(|(n, m, s)| generators::gnm(
            n,
            m.min(n * (n - 1) / 2),
            s
        )),
        (4usize..90, 1u64..1000).prop_map(|(n, s)| generators::preferential_attachment(
            n,
            3.min(n - 1),
            s
        )),
        (3usize..80).prop_map(generators::path),
        (3usize..50).prop_map(generators::cycle),
        (2usize..40).prop_map(generators::star),
        (2usize..16, 3usize..16).prop_map(|(a, b)| generators::disjoint_union(
            &generators::path(a),
            &generators::cycle(b)
        )),
    ]
}

/// A graph together with a non-empty source set (indices folded into range;
/// duplicates kept on purpose — a repeated source must keep its first owner).
fn graph_and_sources() -> impl Strategy<Value = (CsrGraph, Vec<NodeId>)> {
    (
        arbitrary_graph(),
        proptest::collection::vec(0usize..1 << 16, 1..7),
    )
        .prop_map(|(g, raw)| {
            let n = g.num_nodes();
            let sources = raw.iter().map(|&i| (i % n) as NodeId).collect();
            (g, sources)
        })
}

/// The simple reference: run sequential BFS from every source separately and
/// take, per node, the minimum distance — owner is the smallest source index
/// achieving it.
fn per_source_minimum_oracle(g: &CsrGraph, sources: &[NodeId]) -> (Vec<u32>, Vec<NodeId>) {
    let n = g.num_nodes();
    let mut dist = vec![INFINITE_DIST; n];
    let mut owner = vec![INVALID_NODE; n];
    for (i, &s) in sources.iter().enumerate() {
        let b = traversal::bfs(g, s);
        for v in 0..n {
            if b.dist[v] < dist[v] {
                dist[v] = b.dist[v];
                owner[v] = i as NodeId;
            }
        }
    }
    (dist, owner)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// All three strategies produce identical observables, which also equal
    /// the simple `traversal::bfs_multi` entry point.
    #[test]
    fn strategies_are_observably_identical(case in graph_and_sources()) {
        let (g, sources) = case;
        let (simple_r, simple_o) = traversal::bfs_multi(&g, &sources);
        for strategy in FrontierStrategy::ALL {
            let (r, o) = multi_source_bfs(&g, &sources, strategy);
            prop_assert_eq!(&simple_r.dist, &r.dist, "dist diverged under {}", strategy);
            prop_assert_eq!(&simple_o, &o, "owner diverged under {}", strategy);
            prop_assert_eq!(simple_r.visited, r.visited, "visited diverged under {}", strategy);
            prop_assert_eq!(simple_r.levels, r.levels, "levels diverged under {}", strategy);
        }
    }

    /// Multi-source BFS equals the per-source sequential-BFS minimum oracle,
    /// including the smallest-index ownership tie-break, under every
    /// strategy.
    #[test]
    fn multi_source_equals_per_source_minimum(case in graph_and_sources()) {
        let (g, sources) = case;
        let (oracle_dist, oracle_owner) = per_source_minimum_oracle(&g, &sources);
        for strategy in FrontierStrategy::ALL {
            let (r, o) = multi_source_bfs(&g, &sources, strategy);
            prop_assert_eq!(&oracle_dist, &r.dist, "dist vs oracle under {}", strategy);
            prop_assert_eq!(&oracle_owner, &o, "owner vs oracle under {}", strategy);
            // Structural invariants: visited counts the finite distances,
            // ownership and reachability coincide, levels is the max.
            let finite = r.dist.iter().filter(|&&d| d != INFINITE_DIST).count();
            prop_assert_eq!(r.visited, finite);
            let max_finite = r.dist.iter().copied()
                .filter(|&d| d != INFINITE_DIST).max().unwrap_or(0);
            prop_assert_eq!(r.levels, max_finite);
            for (v, (&ov, &dv)) in o.iter().zip(&r.dist).enumerate() {
                prop_assert_eq!(
                    ov == INVALID_NODE,
                    dv == INFINITE_DIST,
                    "owner/dist reachability mismatch at node {} under {}", v, strategy
                );
            }
        }
    }

    /// Single-source: every strategy agrees with the plain sequential BFS.
    #[test]
    fn single_source_matches_sequential_bfs(g in arbitrary_graph(), raw in 0usize..1 << 16) {
        let src = (raw % g.num_nodes()) as NodeId;
        let reference = traversal::bfs(&g, src);
        for strategy in FrontierStrategy::ALL {
            let r = single_source_bfs(&g, src, strategy);
            prop_assert_eq!(&reference.dist, &r.dist, "dist diverged under {}", strategy);
            prop_assert_eq!(reference.visited, r.visited, "visited diverged under {}", strategy);
            prop_assert_eq!(reference.levels, r.levels, "levels diverged under {}", strategy);
        }
    }
}
