//! Property tests for the radix-shuffle MR engine: arbitrary key/value
//! multisets × partition counts × pool sizes, asserting
//!
//! 1. the radix engine is **byte-for-byte** equal to the naive reference
//!    engine (sequential routing, first-arrival group-by — the executable
//!    spec of a round),
//! 2. the map-side combiner path produces exactly the uncombined output,
//! 3. values arrive at the reducer in input order within each key, and
//! 4. outputs are identical on a 1-thread and a 4-thread pool.

use pardec::mr::shuffle::partition_of;
use pardec::mr::{MrConfig, MrEngine};
use proptest::prelude::*;
use proptest::strategy::Just;

/// The naive reference engine: what one round *means*. Pairs are routed
/// sequentially to `partition_of(key)`; within a partition, groups are
/// emitted in first-arrival order with values in arrival order; partition
/// outputs are concatenated in partition order.
fn naive_round<K, V, K2, V2, F>(input: &[(K, V)], partitions: usize, reducer: F) -> Vec<(K2, V2)>
where
    K: std::hash::Hash + Eq + Clone,
    V: Clone,
    F: Fn(&K, Vec<V>) -> Vec<(K2, V2)>,
{
    let parts = partitions.max(1);
    let mut buckets: Vec<Vec<(K, V)>> = (0..parts).map(|_| Vec::new()).collect();
    for (k, v) in input {
        buckets[partition_of(k, parts)].push((k.clone(), v.clone()));
    }
    let mut out = Vec::new();
    for bucket in buckets {
        let mut keys: Vec<K> = Vec::new();
        let mut groups: Vec<Vec<V>> = Vec::new();
        for (k, v) in bucket {
            match keys.iter().position(|q| *q == k) {
                Some(i) => groups[i].push(v),
                None => {
                    keys.push(k);
                    groups.push(vec![v]);
                }
            }
        }
        for (k, vs) in keys.iter().zip(groups) {
            out.extend(reducer(k, vs));
        }
    }
    out
}

fn on_pool<T: Send>(threads: usize, f: impl Fn() -> T + Sync + Send) -> T {
    rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("pool construction cannot fail")
        .install(f)
}

/// Key/value multisets with deliberately small key spaces (collisions and
/// fat groups) and occasional adversarial shapes (all-equal, empty).
fn pairs_strategy() -> impl Strategy<Value = Vec<(u16, u16)>> {
    prop_oneof![
        proptest::collection::vec((0u16..24, any::<u16>()), 0..400),
        proptest::collection::vec((Just(7u16), any::<u16>()), 0..100), // one fat key
        proptest::collection::vec((any::<u16>(), any::<u16>()), 0..400), // sparse keys
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Identity reducer: the full (key order × value order × routing)
    /// contract, radix vs naive, at two pool sizes.
    #[test]
    fn radix_equals_naive_byte_for_byte(
        input in pairs_strategy(),
        partitions in 1usize..12,
        threads in prop_oneof![Just(1usize), Just(4usize)],
    ) {
        let expected = naive_round(&input, partitions, |&k, vs: Vec<u16>| {
            vs.into_iter().map(|v| (k, v)).collect()
        });
        let got = on_pool(threads, || {
            let mut eng = MrEngine::new(MrConfig::with_partitions(partitions));
            eng.round(input.clone(), |&k, vs| {
                vs.into_iter().map(|v| (k, v)).collect::<Vec<_>>()
            })
            .expect("accounting-only round cannot fail")
        });
        prop_assert_eq!(got, expected);
    }

    /// Aggregating reducer with a matching combiner: the combined path must
    /// produce exactly the uncombined output (same pairs, same order), and
    /// the ledger must record both the pre- and post-combine volumes.
    #[test]
    fn combiner_path_equals_uncombined(
        input in pairs_strategy(),
        partitions in 1usize..12,
        threads in prop_oneof![Just(1usize), Just(4usize)],
    ) {
        // Sum aggregation over u64 (no overflow from ≤400 u16 values), with
        // addition as both the combiner and the reducer's fold.
        let wide: Vec<(u16, u64)> = input.iter().map(|&(k, v)| (k, u64::from(v))).collect();
        let (uncombined, combined, ledger) = on_pool(threads, || {
            let mut plain = MrEngine::new(MrConfig::with_partitions(partitions));
            let uncombined = plain
                .round(wide.clone(), |&k, vs| {
                    vec![(k, vs.into_iter().sum::<u64>())]
                })
                .expect("round cannot fail");
            let mut comb = MrEngine::new(MrConfig::with_partitions(partitions));
            let combined = comb
                .round_combined(
                    wide.clone(),
                    "combined",
                    |acc, v| *acc += v,
                    |&k, vs| vec![(k, vs.into_iter().sum::<u64>())],
                )
                .expect("round cannot fail");
            (uncombined, combined, comb.stats().clone())
        });
        prop_assert_eq!(&combined, &uncombined);
        let r = &ledger.rounds()[0];
        prop_assert_eq!(r.map_pairs, wide.len());
        prop_assert!(r.input_pairs <= r.map_pairs);
        // At most one shuffled pair per (key, map chunk).
        let distinct = input.iter().map(|(k, _)| k).collect::<std::collections::BTreeSet<_>>().len();
        prop_assert!(r.input_pairs <= distinct * partitions);
    }

    /// Arrival order within a key is the input order (the seed engine's
    /// documented contract, preserved by the radix layout).
    #[test]
    fn values_arrive_in_input_order(
        input in pairs_strategy(),
        partitions in 1usize..12,
    ) {
        let mut eng = MrEngine::new(MrConfig::with_partitions(partitions));
        let out = eng
            .round(input.clone(), |&k, vs| vs.into_iter().map(|v| (k, v)).collect::<Vec<_>>())
            .expect("round cannot fail");
        for key in input.iter().map(|(k, _)| *k).collect::<std::collections::BTreeSet<_>>() {
            let emitted: Vec<u16> = out.iter().filter(|(k, _)| *k == key).map(|(_, v)| *v).collect();
            let original: Vec<u16> =
                input.iter().filter(|(k, _)| *k == key).map(|(_, v)| *v).collect();
            prop_assert_eq!(emitted, original, "key {}", key);
        }
    }

    /// Pool size never changes a round's output (the runtime's headline
    /// guarantee, now holding through the radix scatter).
    #[test]
    fn pool_size_invariance(
        input in pairs_strategy(),
        partitions in 1usize..12,
    ) {
        let run = |threads: usize| on_pool(threads, || {
            let mut eng = MrEngine::new(MrConfig::with_partitions(partitions));
            eng.round(input.clone(), |&k, vs| {
                vs.into_iter().map(|v| (k, v)).collect::<Vec<_>>()
            })
            .expect("round cannot fail")
        });
        prop_assert_eq!(run(1), run(4));
    }

    /// Different partition counts permute output order but never the
    /// multiset of results.
    #[test]
    fn partition_count_preserves_multiset(
        input in pairs_strategy(),
        a in 1usize..12,
        b in 1usize..12,
    ) {
        let run = |partitions: usize| {
            let mut eng = MrEngine::new(MrConfig::with_partitions(partitions));
            let mut out = eng
                .round(input.clone(), |&k, vs| {
                    vec![(k, (vs.len() as u32, vs.into_iter().map(u64::from).sum::<u64>()))]
                })
                .expect("round cannot fail");
            out.sort_unstable();
            out
        };
        prop_assert_eq!(run(a), run(b));
    }
}
