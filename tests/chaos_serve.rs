//! Chaos suite for the hardened `pardec serve` loop.
//!
//! Every scenario spins up a real TCP daemon, lets a **victim** connection
//! misbehave through a seeded [`FaultyStream`] (torn frames, partial
//! writes, delayed reads, mid-frame disconnects, byte corruption), and then
//! asserts the two properties the robustness issue pins down:
//!
//! 1. the daemon survives — zero panics, still answering; and
//! 2. a **survivor** connection that was open the whole time receives
//!    responses byte-identical to a fault-free run.
//!
//! Each scenario runs on a 1-worker and a 4-worker pool, so the chaos
//! harness re-asserts the workspace's determinism contract under fire.

use pardec::core::faultnet::{Fault, FaultPlan, FaultyStream};
use pardec::core::wire::{self, Request, ServeConfig};
use pardec::prelude::*;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::time::Duration;

fn chaos_session() -> Arc<Session> {
    // 12×12 mesh, τ = 4: big enough that batched queries do real frontier
    // work, small enough that a scenario runs in milliseconds.
    Arc::new(Session::build(
        generators::mesh(12, 12),
        &SessionParams::new(4, 42),
    ))
}

/// Short timeouts so stalled victims cost milliseconds, not the defaults'
/// tens of seconds; the debug panic opcode is armed for the isolation test.
fn chaos_config() -> ServeConfig {
    ServeConfig {
        read_timeout: Duration::from_millis(200),
        write_timeout: Duration::from_millis(500),
        idle_timeout: Duration::from_secs(10),
        deadline: Duration::from_secs(5),
        debug_panic_op: true,
        ..ServeConfig::default()
    }
}

fn pool(workers: usize) -> Arc<rayon::ThreadPool> {
    Arc::new(
        rayon::ThreadPoolBuilder::new()
            .num_threads(workers)
            .build()
            .unwrap(),
    )
}

fn spawn_daemon(session: Arc<Session>, workers: usize, config: ServeConfig) -> wire::ServerHandle {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    wire::serve_with(listener, session, pool(workers), 3, config).unwrap()
}

/// The canonical request script; every response is deterministic given the
/// session, so its concatenated response bytes are the identity baseline.
fn script() -> Vec<Request> {
    vec![
        Request::Info,
        Request::ClusterOf(vec![0, 5, 17, 143]),
        Request::Distance(vec![(0, 143), (7, 7), (12, 100)]),
        Request::Eccentricity(vec![3, 99]),
        Request::Nearest {
            sources: vec![0, 143],
            probes: vec![1, 2, 77],
        },
    ]
}

/// Runs the script over any transport, collecting raw response frames.
fn run_script<S: Read + Write>(stream: &mut S) -> io::Result<Vec<Vec<u8>>> {
    let mut out = Vec::new();
    for req in script() {
        wire::write_frame(stream, &wire::encode_request(&req))?;
        match wire::read_frame(stream)? {
            Some(body) => out.push(body),
            None => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "server closed mid-script",
                ))
            }
        }
    }
    Ok(out)
}

fn connect(handle: &wire::ServerHandle) -> TcpStream {
    let stream = TcpStream::connect(handle.addr()).unwrap();
    // Bound every client wait so a scenario can never hang the suite.
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    stream
}

/// Fault-free response bytes for this session (per pool size, though the
/// determinism contract makes them identical across pool sizes too).
fn baseline(session: &Arc<Session>, workers: usize) -> Vec<Vec<u8>> {
    let handle = spawn_daemon(session.clone(), workers, chaos_config());
    let mut clean = connect(&handle);
    let responses = run_script(&mut clean).unwrap();
    drop(clean);
    handle.shutdown();
    handle.join();
    responses
}

#[test]
fn daemon_survives_every_fault_plan_with_identical_survivor_responses() {
    let session = chaos_session();
    for workers in [1, 4] {
        let expect = baseline(&session, workers);
        for plan in FaultPlan::standard_suite(0xC0FFEE + workers as u64) {
            let name = plan.name;
            let handle = spawn_daemon(session.clone(), workers, chaos_config());

            // The survivor connects (and is served) before any fault fires…
            let mut survivor = connect(&handle);
            let first = run_script(&mut survivor).unwrap();
            assert_eq!(first, expect, "pre-chaos script, plan {name}, {workers}w");

            // …then the victim runs the same script through the fault plan.
            // Whatever happens to it — timeouts, severed sockets, error
            // statuses — must stay its own problem.
            let mut victim = FaultyStream::new(connect(&handle), plan);
            let _ = run_script(&mut victim);
            drop(victim);

            // The survivor's connection was never dropped, and its bytes
            // are exactly the fault-free bytes.
            let after = run_script(&mut survivor).unwrap();
            assert_eq!(after, expect, "post-chaos script, plan {name}, {workers}w");

            let stats = handle.stats();
            assert_eq!(stats.panics_caught, 0, "plan {name}: daemon panicked");
            assert_eq!(handle.epoch(), 1, "plan {name}: epoch moved");
            handle.shutdown();
            handle.join();
        }
    }
}

#[test]
fn panic_is_isolated_while_survivors_keep_identical_bytes() {
    let session = chaos_session();
    for workers in [1, 4] {
        let expect = baseline(&session, workers);
        let handle = spawn_daemon(session.clone(), workers, chaos_config());
        let mut survivor = connect(&handle);
        assert_eq!(run_script(&mut survivor).unwrap(), expect);

        // Victim trips the debug panic opcode: ERR_INTERNAL, then its
        // connection — and only its connection — closes.
        let mut victim = connect(&handle);
        wire::write_frame(&mut victim, &[wire::OP_DEBUG_PANIC]).unwrap();
        let body = wire::read_frame(&mut victim).unwrap().unwrap();
        assert_eq!(
            wire::decode_response(&body).unwrap().status,
            wire::ERR_INTERNAL
        );
        assert!(matches!(wire::read_frame(&mut victim), Ok(None) | Err(_)));
        drop(victim);

        assert_eq!(run_script(&mut survivor).unwrap(), expect);
        assert_eq!(handle.stats().panics_caught, 1);
        handle.shutdown();
        handle.join();
    }
}

#[test]
fn undersized_inflight_budget_sheds_big_requests_but_serves_small_ones() {
    let session = chaos_session();
    for workers in [1, 4] {
        // 8 inflight bytes: INFO (1-byte body) is admitted, every batched
        // request (≥ 5-byte body) is shed — deterministically, no racing.
        let handle = spawn_daemon(
            session.clone(),
            workers,
            ServeConfig {
                max_inflight_bytes: 8,
                retry_after_ms: 77,
                ..chaos_config()
            },
        );
        let mut stream = connect(&handle);
        for _ in 0..2 {
            wire::write_frame(&mut stream, &wire::encode_request(&Request::Info)).unwrap();
            let body = wire::read_frame(&mut stream).unwrap().unwrap();
            assert_eq!(wire::decode_response(&body).unwrap().status, 0);

            let big = Request::ClusterOf(vec![0, 5, 17, 143]);
            wire::write_frame(&mut stream, &wire::encode_request(&big)).unwrap();
            let body = wire::read_frame(&mut stream).unwrap().unwrap();
            let resp = wire::decode_response(&body).unwrap();
            assert_eq!(resp.status, wire::ERR_OVERLOADED);
            assert_eq!(&resp.body[..4], &77u32.to_le_bytes());
        }
        assert_eq!(handle.stats().shed, 2);
        handle.shutdown();
        handle.join();
    }
}

#[test]
fn reload_during_load_swaps_and_rolls_back_without_dropping_connections() {
    let session = chaos_session();
    let dir = std::env::temp_dir().join(format!("pardec_chaos_reload_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let good = dir.join("good.pdec");
    let bad = dir.join("bad.pdec");
    let mut bytes = Vec::new();
    session.save(&mut bytes).unwrap();
    std::fs::write(&good, &bytes).unwrap();
    std::fs::write(&bad, &bytes[..bytes.len() / 3]).unwrap();

    for workers in [1, 4] {
        let expect = baseline(&session, workers);
        let handle = spawn_daemon(
            session.clone(),
            workers,
            ServeConfig {
                allow_reload: true,
                reload_default_path: Some(good.display().to_string()),
                ..chaos_config()
            },
        );

        // Client threads hammer the script while reloads happen. The good
        // file holds the same session bytes, so responses stay identical
        // across the epoch swap — in-flight requests finish on whichever
        // epoch they started with, and nobody's connection drops.
        let addr = handle.addr();
        let loaders: Vec<_> = (0..2)
            .map(|_| {
                let expect = expect.clone();
                std::thread::spawn(move || {
                    let mut stream = TcpStream::connect(addr).unwrap();
                    stream
                        .set_read_timeout(Some(Duration::from_secs(5)))
                        .unwrap();
                    for _ in 0..8 {
                        let got = run_script(&mut stream).unwrap();
                        assert_eq!(got, expect, "responses changed during reload");
                    }
                })
            })
            .collect();

        let mut admin = connect(&handle);
        for round in 0..3u64 {
            // Corrupt replacement: refused, rolled back, daemon alive.
            wire::write_frame(
                &mut admin,
                &wire::encode_request(&Request::Reload {
                    path: bad.display().to_string(),
                }),
            )
            .unwrap();
            let body = wire::read_frame(&mut admin).unwrap().unwrap();
            assert_eq!(
                wire::decode_response(&body).unwrap().status,
                wire::ERR_RELOAD_FAILED
            );
            // Valid replacement (empty path → configured default): epoch++.
            wire::write_frame(
                &mut admin,
                &wire::encode_request(&Request::Reload {
                    path: String::new(),
                }),
            )
            .unwrap();
            let body = wire::read_frame(&mut admin).unwrap().unwrap();
            let resp = wire::decode_response(&body).unwrap();
            assert_eq!(resp.status, 0);
            assert_eq!(&resp.body[..], &(round + 2).to_le_bytes());
        }

        for t in loaders {
            t.join().unwrap();
        }
        let stats = handle.stats();
        assert_eq!(handle.epoch(), 4);
        assert_eq!((stats.reloads_ok, stats.reloads_rolled_back), (3, 3));
        assert_eq!(stats.panics_caught, 0);
        handle.shutdown();
        handle.join();
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corruption_storm_never_kills_the_listener() {
    // Heavier variant of the corrupt-bytes plan: many short-lived victims
    // with different seeds, all spraying garbage; the daemon must accept a
    // clean connection afterwards and report zero panics.
    let session = chaos_session();
    let handle = spawn_daemon(session.clone(), 2, chaos_config());
    for seed in 0..12u64 {
        let plan = FaultPlan::new("storm", seed).with(Fault::CorruptBytes { probability: 0.9 });
        let mut victim = FaultyStream::new(connect(&handle), plan);
        let _ = run_script(&mut victim);
    }
    let expect = baseline(&session, 2);
    let mut clean = connect(&handle);
    assert_eq!(run_script(&mut clean).unwrap(), expect);
    assert_eq!(handle.stats().panics_caught, 0);
    handle.shutdown();
    handle.join();
}
