//! Failure-injection tests: every crate's error path exercised through the
//! facade — corrupt inputs, violated budgets, infeasible parameters, and
//! panicking contracts.

use pardec::prelude::*;

// ---------------------------------------------------------------------------
// I/O corruption
// ---------------------------------------------------------------------------

#[test]
fn binary_io_rejects_every_truncation_point() {
    let g = generators::mesh(4, 5);
    let mut buf = Vec::new();
    io::save_binary(&g, &mut buf).unwrap();
    // Sweep truncations across header, offsets, and payload.
    for cut in [1usize, 5, 7, 15, 23, buf.len() - 1] {
        assert!(
            io::load_binary(&buf[..cut]).is_err(),
            "truncation at {cut} accepted"
        );
    }
}

#[test]
fn binary_io_rejects_out_of_range_targets() {
    let g = generators::path(3);
    let mut buf = Vec::new();
    io::save_binary(&g, &mut buf).unwrap();
    // Patch the first target (last 4×arcs bytes region) to a huge id.
    let arcs = g.num_arcs();
    let target_region = buf.len() - 4 * arcs;
    buf[target_region..target_region + 4].copy_from_slice(&u32::MAX.to_le_bytes());
    assert!(io::load_binary(&buf).is_err());
}

#[test]
fn edge_list_parser_rejects_malformed_lines() {
    for bad in ["1", "a b", "1 2\n3", "-1 2"] {
        let res = io::read_edge_list(&mut std::io::BufReader::new(bad.as_bytes()));
        assert!(res.is_err(), "accepted {bad:?}");
    }
    // Extra columns on a line are tolerated (ignored).
    let ok = io::read_edge_list(&mut std::io::BufReader::new("1 2 ignored-extra".as_bytes()));
    assert!(ok.is_ok());
}

// ---------------------------------------------------------------------------
// MR engine budget violations
// ---------------------------------------------------------------------------

#[test]
fn mr_hard_budget_aborts_and_soft_budget_records() {
    let skewed: Vec<(u8, u8)> = vec![(0, 0); 64];
    let mut hard = MrEngine::new(MrConfig::with_partitions(2).with_local_memory(8));
    assert!(hard
        .round(skewed.clone(), |&k, vs| vec![(k, vs.len())])
        .is_err());

    let mut soft = MrEngine::new(MrConfig::with_partitions(2).with_soft_local_memory(8));
    let out = soft.round(skewed, |&k, vs| vec![(k, vs.len())]).unwrap();
    assert_eq!(out, vec![(0, 64)]);
    assert_eq!(soft.stats().total_violations(), 1);
    assert_eq!(soft.stats().max_local_memory(), 64);
}

#[test]
fn mr_sort_respects_hard_budget_on_uniform_data() {
    // A generous budget on well-spread data must NOT trip.
    let items: Vec<u64> = (0..10_000u64)
        .map(|i| i.wrapping_mul(0x2545F4914F6CDD1D))
        .collect();
    let mut eng = MrEngine::new(MrConfig::with_partitions(16).with_local_memory(4_000));
    let sorted = pardec::mr::primitives::mr_sort(&mut eng, items.clone(), 1).unwrap();
    let mut expect = items;
    expect.sort();
    assert_eq!(sorted, expect);
}

// ---------------------------------------------------------------------------
// Infeasible algorithm parameters
// ---------------------------------------------------------------------------

#[test]
fn kcenter_infeasibility_is_an_error_not_a_panic() {
    let g = generators::disjoint_union(&generators::path(4), &generators::path(4));
    let err = kcenter(&g, 1, 0).unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("components"), "unexpected message: {msg}");
    assert!(gonzalez(&g, 0, 0).is_err());
}

#[test]
#[should_panic(expected = "tau must be positive")]
fn cluster_params_reject_zero_tau() {
    let _ = ClusterParams::new(0, 1);
}

#[test]
#[should_panic(expected = "beta must be positive")]
fn mpx_rejects_nonpositive_beta() {
    let g = generators::path(4);
    let _ = mpx(&g, 0.0, 1);
}

#[test]
#[should_panic(expected = "out of range")]
fn append_chain_rejects_bad_attach() {
    let g = generators::path(3);
    let _ = generators::append_chain(&g, 99, 5);
}

#[test]
#[should_panic(expected = "window_frac")]
fn windowed_ba_rejects_zero_window() {
    let _ = generators::windowed_preferential_attachment(100, 3, 0.0, 1);
}

// ---------------------------------------------------------------------------
// Sketch contracts
// ---------------------------------------------------------------------------

#[test]
#[should_panic(expected = "incompatible")]
fn fm_seed_mismatch_panics() {
    let mut a = FmSketch::new(8, 1);
    let b = FmSketch::new(8, 2);
    a.merge(&b);
}

#[test]
#[should_panic(expected = "at least one trial")]
fn fm_zero_trials_panics() {
    let _ = FmSketch::new(0, 1);
}

// ---------------------------------------------------------------------------
// Degenerate graph inputs survive every public algorithm
// ---------------------------------------------------------------------------

#[test]
fn degenerate_graphs_do_not_break_the_stack() {
    for g in [CsrGraph::empty(0), CsrGraph::empty(1), CsrGraph::empty(7)] {
        let c = cluster(&g, &ClusterParams::new(1, 0));
        c.clustering.validate(&g).unwrap();
        let m = mpx(&g, 1.0, 0);
        m.clustering.validate(&g).unwrap();
        let h = hadi(&g, &HadiParams::new(0));
        assert_eq!(h.bit_convergence, 0);
        if g.num_nodes() > 0 {
            let a = approximate_diameter(&g, &DiameterParams::new(1, 0));
            assert_eq!(a.lower_bound, 0); // all-isolated: quotient has no edges
        }
    }
}

#[test]
fn single_edge_graph_full_pipeline() {
    let g = GraphBuilder::new(2).add_edges([(0, 1)]).build();
    let a = approximate_diameter(&g, &DiameterParams::new(1, 0));
    assert!(a.lower_bound <= 1);
    assert!(a.estimate() >= 1);
    let k = kcenter(&g, 1, 0).unwrap();
    assert_eq!(k.radius, 1);
    let o = DistanceOracle::build(&g, 1, 0, pardec::core::diameter::Decomposition::Cluster);
    assert!(o.query(0, 1) >= 1);
}
