//! Property tests for the extension modules: Baswana–Sen spanners,
//! min-plus matrix algebra, the weighted decomposition, graph contraction,
//! and the direction-optimizing BFS.

use pardec::core::weighted_cluster::weighted_cluster;
use pardec::graph::contract::{contract, induced_subgraph};
use pardec::graph::spanner::baswana_sen;
use pardec::mr::matrix::{mr_apsp_by_squaring, mr_min_plus_multiply, MinPlusMatrix, MP_INF};
use pardec::prelude::*;
use proptest::prelude::*;

fn small_graph() -> impl Strategy<Value = CsrGraph> {
    prop_oneof![
        (2usize..10, 2usize..10).prop_map(|(r, c)| generators::mesh(r, c)),
        (10usize..120, 1u64..500)
            .prop_map(|(n, s)| { generators::gnm(n, (n * 2).min(n * (n - 1) / 2), s) }),
        (6usize..80, 1u64..500).prop_map(|(n, s)| generators::preferential_attachment(
            n.max(5),
            4.min(n - 1),
            s
        )),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Spanner: subgraph, same components, stretch ≤ 2k-1 (checked from a
    /// sampled source).
    #[test]
    fn spanner_invariants(g in small_graph(), k in 1usize..4, seed in any::<u64>()) {
        let s = baswana_sen(&g, k, seed);
        prop_assert_eq!(s.stretch as usize, 2 * k - 1);
        prop_assert!(s.graph.num_edges() <= g.num_edges());
        // Subgraph: every spanner edge exists in g.
        for (u, v) in s.graph.edges() {
            prop_assert!(g.has_edge(u, v), "spurious edge ({u}, {v})");
        }
        // Stretch from node 0.
        if g.num_nodes() > 0 {
            let orig = traversal::bfs(&g, 0).dist;
            let span = traversal::bfs(&s.graph, 0).dist;
            for v in 0..g.num_nodes() {
                if orig[v] == INFINITE_DIST {
                    prop_assert_eq!(span[v], INFINITE_DIST);
                } else {
                    prop_assert!(span[v] <= s.stretch * orig[v].max(1),
                        "stretch at {v}: {} > {} * {}", span[v], s.stretch, orig[v]);
                }
            }
        }
    }

    /// Min-plus product: MR result equals the sequential reference for any
    /// tile size; squaring closure equals Dijkstra APSP.
    #[test]
    fn minplus_matrix_laws(n in 1usize..14, edges in prop::collection::vec((0u32..14, 0u32..14, 1u64..50), 0..40), tile in 1usize..6) {
        let edges: Vec<(u32, u32, u64)> = edges.into_iter()
            .filter(|&(u, v, _)| (u as usize) < n && (v as usize) < n && u != v)
            .collect();
        let a = MinPlusMatrix::from_edges(n, &edges);
        let mut eng = MrEngine::new(MrConfig::with_partitions(4));
        let prod = mr_min_plus_multiply(&mut eng, &a, &a, tile).unwrap();
        prop_assert_eq!(&prod, &a.multiply_seq(&a));

        let closure = mr_apsp_by_squaring(&mut eng, &a, tile).unwrap();
        let wg = WeightedGraph::from_edges(n, &edges);
        for u in 0..n {
            let d = wg.dijkstra(u as u32);
            for (v, &dv) in d.iter().enumerate() {
                let expect = if dv == u64::MAX { MP_INF } else { dv };
                let got = closure.get(u, v).min(MP_INF);
                prop_assert!(got >= expect.min(MP_INF) && (got == expect || (got >= MP_INF && dv == u64::MAX)),
                    "closure[{u}][{v}] = {got} vs dijkstra {expect}");
            }
        }
    }

    /// Weighted decomposition: valid partition; hop radius ≤ weighted radius
    /// when all weights ≥ 1; unit weights reduce to the hop metric.
    #[test]
    fn weighted_cluster_invariants(n in 2usize..80, extra in 0usize..100, tau in 1usize..4, seed in any::<u64>()) {
        // Connected base: a path with random extra weighted edges.
        let mut edges: Vec<(u32, u32, u64)> = (1..n as u32).map(|v| (v - 1, v, 1 + (v as u64 % 5))).collect();
        let mut x = seed;
        for _ in 0..extra {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let u = (x >> 33) as usize % n;
            let v = (x >> 13) as usize % n;
            if u != v {
                edges.push((u as u32, v as u32, 1 + (x % 9)));
            }
        }
        let g = WeightedGraph::from_edges(n, &edges);
        let r = weighted_cluster(&g, &ClusterParams::new(tau, seed));
        prop_assert!(r.validate(&g).is_ok(), "{:?}", r.validate(&g));
        for v in 0..n {
            prop_assert!((r.hops[v] as u64) <= r.weighted_dist[v] + 1);
        }
    }

    /// Contraction conserves mass and matches the quotient view.
    #[test]
    fn contraction_conserves_mass(g in small_graph(), num_labels in 1usize..8, seed in any::<u64>()) {
        let n = g.num_nodes();
        prop_assume!(n > 0);
        let labels: Vec<NodeId> = (0..n).map(|v| {
            let h = (v as u64).wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(seed);
            (h % num_labels as u64) as NodeId
        }).collect();
        let c = contract(&g, &labels, num_labels);
        let cut: u64 = c.edge_multiplicity.values().sum();
        prop_assert_eq!(cut + c.internal_edges, g.num_edges() as u64);
        prop_assert_eq!(c.node_weight.iter().sum::<u64>(), n as u64);
        prop_assert_eq!(&c.graph, &quotient::quotient(&g, &labels, num_labels));
    }

    /// Induced subgraph: edge iff both endpoints selected and edge in g.
    #[test]
    fn induced_subgraph_correct(g in small_graph(), picks in prop::collection::vec(any::<u16>(), 0..40)) {
        let n = g.num_nodes();
        prop_assume!(n > 0);
        let nodes: Vec<NodeId> = picks.into_iter().map(|p| (p as usize % n) as NodeId).collect();
        let (sub, orig) = induced_subgraph(&g, &nodes);
        for (a, b) in sub.edges() {
            prop_assert!(g.has_edge(orig[a as usize], orig[b as usize]));
        }
        // Count expected edges among distinct selected nodes.
        let mut selected = vec![false; n];
        for &v in &nodes { selected[v as usize] = true; }
        let expect = g.edges().filter(|&(u, v)| selected[u as usize] && selected[v as usize]).count();
        prop_assert_eq!(sub.num_edges(), expect);
    }

    /// Direction-optimizing BFS is distance-identical to plain BFS.
    #[test]
    fn direction_optimizing_bfs_equiv(g in small_graph(), src_pick in any::<u16>()) {
        let n = g.num_nodes();
        prop_assume!(n > 0);
        let src = (src_pick as usize % n) as NodeId;
        let a = traversal::bfs(&g, src);
        let b = traversal::bfs_direction_optimizing(&g, src);
        prop_assert_eq!(a.dist, b.dist);
    }
}
