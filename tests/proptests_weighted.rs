//! Property tests for the weighted pipeline's equivalence contracts:
//!
//! * the bucketed [`WeightedFrontierEngine`] equals the per-source
//!   sequential-Dijkstra minimum oracle on arbitrary weighted graphs,
//!   source sets, bucket widths, and pool sizes — distance-wise, owner-wise
//!   (smallest source index among the nearest sources wins), and hop-wise
//!   (fewest hops among that owner's shortest paths);
//! * with unit weights the weighted engine degenerates to the unweighted
//!   level-synchronous frontier;
//! * `weighted_cluster` (engine-backed) is byte-identical to its retained
//!   sequential heap oracle `weighted_cluster::naive` at every δ and pool
//!   size, and every clustering it produces passes `validate`;
//! * `weighted_diameter` brackets the true weighted diameter;
//! * `WeightedGraph::from_edges` is a pure function of the edge multiset
//!   (any permutation builds a byte-identical graph).

use pardec::core::weighted_cluster::naive;
use pardec::graph::frontier::{multi_source_bfs, FrontierStrategy};
use pardec::graph::weighted::INFINITE_WEIGHT;
use pardec::graph::wfrontier::multi_source_dijkstra;
use pardec::prelude::*;
use proptest::prelude::*;
use proptest::strategy::Just;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Deterministic per-edge weights in `1..=max_w` from an unweighted graph.
fn weight_edges(g: &CsrGraph, salt: u64, max_w: u64) -> Vec<(NodeId, NodeId, u64)> {
    g.edges()
        .map(|(u, v)| {
            let h = (u as u64)
                .wrapping_mul(31)
                .wrapping_add(v as u64)
                .wrapping_mul(0x9e3779b97f4a7c15)
                .wrapping_add(salt);
            (u, v, h % max_w + 1)
        })
        .collect()
}

/// An arbitrary weighted graph — workspace families with deterministic
/// weights, unit-weight variants, and raw (possibly duplicated) edge lists.
/// Not restricted to connected graphs.
fn arbitrary_weighted() -> impl Strategy<Value = WeightedGraph> {
    prop_oneof![
        (2usize..10, 2usize..10, 1u64..500, 1u64..12).prop_map(|(r, c, s, w)| {
            let g = generators::mesh(r, c);
            WeightedGraph::from_edges(g.num_nodes(), &weight_edges(&g, s, w))
        }),
        (2usize..90, 0usize..160, 1u64..500, 1u64..60).prop_map(|(n, m, s, w)| {
            let g = generators::gnm(n, m.min(n * (n - 1) / 2), s);
            WeightedGraph::from_edges(g.num_nodes(), &weight_edges(&g, s, w))
        }),
        (4usize..70, 1u64..500).prop_map(|(n, s)| {
            let g = generators::preferential_attachment(n, 3.min(n - 1), s);
            WeightedGraph::from_edges(g.num_nodes(), &weight_edges(&g, s, 9))
        }),
        // Unit weights: the degenerate case that must match unweighted BFS.
        (3usize..60, 0usize..100, 1u64..500).prop_map(|(n, m, s)| {
            let g = generators::gnm(n, m.min(n * (n - 1) / 2), s);
            let edges: Vec<_> = g.edges().map(|(u, v)| (u, v, 1u64)).collect();
            WeightedGraph::from_edges(g.num_nodes(), &edges)
        }),
        // Raw edge soup: duplicates and both orientations allowed.
        (
            2usize..40,
            proptest::collection::vec((0u32..40, 0u32..40, 1u64..30), 0..120)
        )
            .prop_map(|(n, raw)| {
                let edges: Vec<_> = raw
                    .into_iter()
                    .map(|(u, v, w)| (u % n as u32, v % n as u32, w))
                    .collect();
                WeightedGraph::from_edges(n, &edges)
            }),
    ]
}

fn graph_and_sources() -> impl Strategy<Value = (WeightedGraph, Vec<NodeId>)> {
    (
        arbitrary_weighted(),
        proptest::collection::vec(0usize..1 << 16, 1..6),
    )
        .prop_map(|(g, raw)| {
            let n = g.num_nodes().max(1);
            let sources = raw.iter().map(|&i| (i % n) as NodeId).collect();
            (g, sources)
        })
}

/// Runs `f` in a 1-thread and a 4-thread pool; returns both outputs.
fn on_both_pools<T: Send>(f: impl Fn() -> T + Sync + Send) -> (T, T) {
    let run = |threads: usize| {
        rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("pool construction cannot fail")
            .install(&f)
    };
    (run(1), run(4))
}

/// Per-source sequential Dijkstra minimum oracle. Sources are deduplicated
/// keeping first occurrence (as the engine does); per node the winning
/// claim minimizes `(dist, source_index)`, with hops the fewest among the
/// winner's shortest paths — the engine's packed-claim order.
fn per_source_oracle(
    g: &WeightedGraph,
    sources: &[NodeId],
) -> (Vec<NodeId>, Vec<u64>, Vec<u32>, Vec<NodeId>) {
    let n = g.num_nodes();
    let mut seen = vec![false; n];
    let mut dedup = Vec::new();
    for &s in sources {
        if !seen[s as usize] {
            seen[s as usize] = true;
            dedup.push(s);
        }
    }
    let mut owner = vec![INVALID_NODE; n];
    let mut dist = vec![INFINITE_WEIGHT; n];
    let mut hops = vec![u32::MAX; n];
    for (i, &s) in dedup.iter().enumerate() {
        // Dijkstra over lexicographic (dist, hops) labels.
        let mut best: Vec<(u64, u32)> = vec![(INFINITE_WEIGHT, u32::MAX); n];
        let mut heap = BinaryHeap::new();
        best[s as usize] = (0, 0);
        heap.push(Reverse((0u64, 0u32, s)));
        while let Some(Reverse((d, h, v))) = heap.pop() {
            if (d, h) > best[v as usize] {
                continue;
            }
            for (u, w) in g.neighbors(v) {
                let cand = (d + w, h + 1);
                if cand < best[u as usize] {
                    best[u as usize] = cand;
                    heap.push(Reverse((cand.0, cand.1, u)));
                }
            }
        }
        for v in 0..n {
            let (d, h) = best[v];
            if d < dist[v] {
                dist[v] = d;
                hops[v] = h;
                owner[v] = i as NodeId;
            }
        }
    }
    (owner, dist, hops, dedup)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// The bucketed engine equals the per-source Dijkstra oracle for every
    /// bucket width, at 1 and 4 threads, byte for byte.
    #[test]
    fn engine_matches_dijkstra_oracle(
        case in graph_and_sources(),
        delta in prop_oneof![Just(1u64), 2u64..20, Just(1_000_000u64)],
    ) {
        let (g, sources) = case;
        let (owner, dist, hops, dedup) = per_source_oracle(&g, &sources);
        let (one, four) = on_both_pools(|| multi_source_dijkstra(&g, &sources, delta));
        for parts in [one, four] {
            prop_assert_eq!(&parts.sources, &dedup);
            prop_assert_eq!(&parts.owner, &owner, "owner diverged at delta={}", delta);
            prop_assert_eq!(&parts.weighted_dist, &dist, "dist diverged at delta={}", delta);
            prop_assert_eq!(&parts.hops, &hops, "hops diverged at delta={}", delta);
        }
    }

    /// Unit weights degenerate to the unweighted level-synchronous wave:
    /// same owners, weighted distance = BFS level = hops.
    #[test]
    fn unit_weights_match_unweighted_frontier(
        g in (3usize..70, 0usize..120, 1u64..500).prop_map(|(n, m, s)| {
            generators::gnm(n, m.min(n * (n - 1) / 2), s)
        }),
        raw in proptest::collection::vec(0usize..1 << 16, 1..5),
        delta in prop_oneof![Just(1u64), Just(3u64)],
    ) {
        let sources: Vec<NodeId> = raw.iter().map(|&i| (i % g.num_nodes()) as NodeId).collect();
        let edges: Vec<_> = g.edges().map(|(u, v)| (u, v, 1u64)).collect();
        let wg = WeightedGraph::from_edges(g.num_nodes(), &edges);
        let parts = multi_source_dijkstra(&wg, &sources, delta);
        let (bfs, owner) = multi_source_bfs(&g, &sources, FrontierStrategy::TopDown);
        // The engine numbers owners by deduplicated activation order, the
        // BFS by source-list position; both orders agree on first
        // occurrences, so the winning *center node* is identical.
        for v in 0..g.num_nodes() {
            let engine_center =
                (parts.owner[v] != INVALID_NODE).then(|| parts.sources[parts.owner[v] as usize]);
            let bfs_center = (owner[v] != INVALID_NODE).then(|| sources[owner[v] as usize]);
            prop_assert_eq!(engine_center, bfs_center, "owner diverged at node {}", v);
        }
        for v in 0..g.num_nodes() {
            if bfs.dist[v] == INFINITE_DIST {
                prop_assert_eq!(parts.weighted_dist[v], INFINITE_WEIGHT);
            } else {
                prop_assert_eq!(parts.weighted_dist[v], bfs.dist[v] as u64);
                prop_assert_eq!(parts.hops[v], bfs.dist[v]);
            }
        }
    }

    /// Engine-backed `weighted_cluster` is byte-identical to the sequential
    /// heap oracle at every δ and pool size, and the clustering validates.
    #[test]
    fn weighted_cluster_matches_naive_and_validates(
        g in arbitrary_weighted(),
        tau in 1usize..5,
        seed in 0u64..1000,
    ) {
        let params = ClusterParams::new(tau, seed);
        let oracle = naive::weighted_cluster(&g, &params);
        oracle.validate(&g).unwrap();
        for delta in [1u64, 7, 100_000] {
            let p = ClusterParams::new(tau, seed).with_delta(delta);
            let (one, four) = on_both_pools(|| weighted_cluster(&g, &p));
            prop_assert_eq!(&one, &oracle, "1-thread engine diverged at delta={}", delta);
            prop_assert_eq!(&four, &oracle, "4-thread engine diverged at delta={}", delta);
        }
    }

    /// Paper guarantee: the weighted diameter approximation brackets the
    /// true (per-component max) weighted diameter, at any δ.
    #[test]
    fn weighted_diameter_brackets_truth(
        g in arbitrary_weighted(),
        tau in 1usize..4,
        seed in 0u64..1000,
        delta in prop_oneof![Just(1u64), 5u64..200],
    ) {
        let truth = g.apsp_diameter();
        let a = weighted_diameter(&g, &ClusterParams::new(tau, seed).with_delta(delta));
        prop_assert!(a.lower_bound <= truth, "lower {} > true {}", a.lower_bound, truth);
        prop_assert!(a.upper_bound >= truth, "upper {} < true {}", a.upper_bound, truth);
        prop_assert_eq!(a.quotient_nodes, a.clustering.num_clusters());
        a.clustering.validate(&g).unwrap();
    }

    /// `from_edges` is order-independent: shuffling the edge list (and
    /// flipping orientations) builds a byte-identical graph.
    #[test]
    fn from_edges_is_permutation_independent(
        n in 1usize..40,
        raw in proptest::collection::vec((0u32..40, 0u32..40, 1u64..50), 0..120),
        shuffle_seed in 0u64..1000,
    ) {
        let edges: Vec<_> = raw
            .into_iter()
            .map(|(u, v, w)| (u % n as u32, v % n as u32, w))
            .collect();
        let reference = WeightedGraph::from_edges(n, &edges);
        let mut rng = StdRng::seed_from_u64(shuffle_seed);
        let mut permuted = edges;
        for i in (1..permuted.len()).rev() {
            let j = rng.gen_range(0..i + 1);
            permuted.swap(i, j);
        }
        for e in permuted.iter_mut() {
            if rng.gen::<bool>() {
                *e = (e.1, e.0, e.2); // orientation must not matter either
            }
        }
        prop_assert_eq!(WeightedGraph::from_edges(n, &permuted), reference);
    }
}
