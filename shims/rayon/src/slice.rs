//! Slice-level parallel entry points (mirror of `rayon::slice`):
//! `par_chunks{,_mut}` and the parallel sorts.

use crate::iter::{ChunksMutProducer, ChunksProducer, ParIter};
use crate::pool::join;
use std::cmp::Ordering;

/// Parallel operations on `&[T]` (mirror of `rayon::slice::ParallelSlice`).
pub trait ParallelSlice<T: Sync> {
    /// Parallel iterator over `chunk_size`-sized pieces (last may be
    /// shorter). Chunk boundaries are identical to `slice::chunks`.
    fn par_chunks(&self, chunk_size: usize) -> ParIter<ChunksProducer<'_, T>>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_chunks(&self, chunk_size: usize) -> ParIter<ChunksProducer<'_, T>> {
        assert!(chunk_size != 0, "chunk_size must not be zero");
        ParIter {
            producer: ChunksProducer {
                slice: self,
                chunk: chunk_size,
            },
        }
    }
}

/// Parallel operations on `&mut [T]` (mirror of
/// `rayon::slice::ParallelSliceMut`).
pub trait ParallelSliceMut<T: Send> {
    /// Parallel iterator over mutable `chunk_size`-sized pieces.
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<ChunksMutProducer<'_, T>>;

    /// Parallel unstable sort: sorted leaves (`sort_unstable`) merged
    /// pairwise. The split points depend only on the length, so the result
    /// is identical for every pool size.
    fn par_sort_unstable(&mut self)
    where
        T: Ord;

    /// Parallel unstable sort by key.
    fn par_sort_unstable_by_key<K, F>(&mut self, f: F)
    where
        K: Ord,
        F: Fn(&T) -> K + Sync;

    /// Parallel unstable sort with a comparator.
    fn par_sort_unstable_by<F>(&mut self, compare: F)
    where
        F: Fn(&T, &T) -> Ordering + Sync;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<ChunksMutProducer<'_, T>> {
        assert!(chunk_size != 0, "chunk_size must not be zero");
        ParIter {
            producer: ChunksMutProducer {
                slice: self,
                chunk: chunk_size,
            },
        }
    }

    fn par_sort_unstable(&mut self)
    where
        T: Ord,
    {
        par_merge_sort(self, &|a: &T, b: &T| a.cmp(b));
    }

    fn par_sort_unstable_by_key<K, F>(&mut self, f: F)
    where
        K: Ord,
        F: Fn(&T) -> K + Sync,
    {
        par_merge_sort(self, &|a: &T, b: &T| f(a).cmp(&f(b)));
    }

    fn par_sort_unstable_by<F>(&mut self, compare: F)
    where
        F: Fn(&T, &T) -> Ordering + Sync,
    {
        par_merge_sort(self, &compare);
    }
}

/// Below this length a run is sorted sequentially. A fixed constant — never
/// the worker count — so the recursion tree (and the exact output for
/// equal-comparing, non-identical elements under `by_key`) is deterministic.
const SORT_LEAF: usize = 4096;

fn par_merge_sort<T, C>(v: &mut [T], cmp: &C)
where
    T: Send,
    C: Fn(&T, &T) -> Ordering + Sync,
{
    let len = v.len();
    if len <= SORT_LEAF {
        v.sort_unstable_by(|a, b| cmp(a, b));
        return;
    }
    let mid = len / 2;
    {
        let (left, right) = v.split_at_mut(mid);
        join(|| par_merge_sort(left, cmp), || par_merge_sort(right, cmp));
    }
    merge_runs(v, mid, cmp);
}

/// Restores the un-merged remainder of the left run into the hole if the
/// comparator panics mid-merge, keeping `v` a permutation of its original
/// elements (no leaks, no double drops).
struct MergeGuard<T> {
    src: *const T,
    dst: *mut T,
    remaining: usize,
}

impl<T> Drop for MergeGuard<T> {
    fn drop(&mut self) {
        unsafe {
            std::ptr::copy_nonoverlapping(self.src, self.dst, self.remaining);
        }
    }
}

/// Merges the sorted runs `v[..mid]` and `v[mid..]` in place, using a
/// scratch buffer for the left run (the std merge-sort strategy). Ties take
/// the left element, so the merge is stable.
fn merge_runs<T, C>(v: &mut [T], mid: usize, cmp: &C)
where
    C: Fn(&T, &T) -> Ordering,
{
    let len = v.len();
    if mid == 0 || mid == len || cmp(&v[mid - 1], &v[mid]) != Ordering::Greater {
        return; // already in order
    }
    let mut scratch: Vec<T> = Vec::with_capacity(mid);
    unsafe {
        let base = v.as_mut_ptr();
        // Move the left run out; v[..mid] is now a hole of moved-out slots.
        std::ptr::copy_nonoverlapping(base, scratch.as_mut_ptr(), mid);
        let mut guard = MergeGuard {
            src: scratch.as_ptr(),
            dst: base,
            remaining: mid,
        };
        let mut right = mid;
        while guard.remaining > 0 && right < len {
            // `guard.dst` (the write cursor) never catches up with `right`:
            // written = taken_left + taken_right < mid + taken_right = right.
            if cmp(&*base.add(right), &*guard.src) == Ordering::Less {
                std::ptr::copy_nonoverlapping(base.add(right), guard.dst, 1);
                right += 1;
            } else {
                std::ptr::copy_nonoverlapping(guard.src, guard.dst, 1);
                guard.src = guard.src.add(1);
                guard.remaining -= 1;
            }
            guard.dst = guard.dst.add(1);
        }
        // Right run exhausted: the guard's drop copies the rest of the left
        // run into the hole, which ends exactly at `len`. Left run
        // exhausted: the remaining right elements are already in place.
        drop(guard);
        // `scratch` never had its length set; dropping it frees capacity
        // without double-dropping the moved-out elements.
    }
}
