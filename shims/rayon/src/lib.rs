//! Offline stand-in for the [`rayon`](https://crates.io/crates/rayon) crate.
//!
//! The build environment has no crates.io access, so this crate provides the
//! parallel-iterator API surface pardec uses (`par_iter`, `par_iter_mut`,
//! `into_par_iter`, `par_chunks{,_mut}`, `par_sort_unstable`, and the
//! rayon-shaped `fold`/`reduce` pair) executed **sequentially** on the
//! calling thread. Semantics match rayon for deterministic pipelines: rayon's
//! `fold(identity, op)` yields one accumulator per split and this executor
//! performs exactly one split, so downstream `reduce` sees a single
//! accumulator. Swapping in real rayon is a one-line `Cargo.toml` change.

use std::iter;

/// Logical worker count: real rayon reports its pool size, the sequential
/// shim reports the machine's parallelism so partition-count heuristics
/// (`4 × threads`) still produce sensible shard counts.
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelSlice, ParallelSliceMut};
}

/// A "parallel" iterator: a thin wrapper over a std iterator. Combinators
/// mirror rayon's names; consumers drain eagerly on the calling thread.
pub struct ParIter<I>(I);

// ParIter is itself an Iterator so that `zip` arguments and nested adapters
// compose; inherent methods above win method resolution, keeping the
// rayon-shaped `fold`/`reduce` semantics at call sites.
impl<I: Iterator> Iterator for ParIter<I> {
    type Item = I::Item;

    fn next(&mut self) -> Option<I::Item> {
        self.0.next()
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.0.size_hint()
    }
}

/// Conversion into [`ParIter`]; blanket-implemented for every `IntoIterator`
/// so ranges, vectors, and adapters all gain `into_par_iter`.
pub trait IntoParallelIterator {
    type Item;
    type Iter: Iterator<Item = Self::Item>;
    fn into_par_iter(self) -> ParIter<Self::Iter>;
}

impl<C: IntoIterator> IntoParallelIterator for C {
    type Item = C::Item;
    type Iter = C::IntoIter;
    fn into_par_iter(self) -> ParIter<C::IntoIter> {
        ParIter(self.into_iter())
    }
}

/// `&slice` entry points (`par_iter`, `par_chunks`).
pub trait ParallelSlice<T> {
    fn par_iter(&self) -> ParIter<std::slice::Iter<'_, T>>;
    fn par_chunks(&self, chunk_size: usize) -> ParIter<std::slice::Chunks<'_, T>>;
}

impl<T> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> ParIter<std::slice::Iter<'_, T>> {
        ParIter(self.iter())
    }

    fn par_chunks(&self, chunk_size: usize) -> ParIter<std::slice::Chunks<'_, T>> {
        ParIter(self.chunks(chunk_size))
    }
}

/// `&mut slice` entry points (`par_iter_mut`, `par_chunks_mut`,
/// `par_sort_unstable`).
pub trait ParallelSliceMut<T> {
    fn par_iter_mut(&mut self) -> ParIter<std::slice::IterMut<'_, T>>;
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<std::slice::ChunksMut<'_, T>>;
    fn par_sort_unstable(&mut self)
    where
        T: Ord;
    fn par_sort_unstable_by_key<K: Ord, F: FnMut(&T) -> K>(&mut self, key: F);
}

impl<T> ParallelSliceMut<T> for [T] {
    fn par_iter_mut(&mut self) -> ParIter<std::slice::IterMut<'_, T>> {
        ParIter(self.iter_mut())
    }

    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<std::slice::ChunksMut<'_, T>> {
        ParIter(self.chunks_mut(chunk_size))
    }

    fn par_sort_unstable(&mut self)
    where
        T: Ord,
    {
        self.sort_unstable();
    }

    fn par_sort_unstable_by_key<K: Ord, F: FnMut(&T) -> K>(&mut self, key: F) {
        self.sort_unstable_by_key(key);
    }
}

impl<I: Iterator> ParIter<I> {
    pub fn map<R, F: FnMut(I::Item) -> R>(self, f: F) -> ParIter<iter::Map<I, F>> {
        ParIter(self.0.map(f))
    }

    pub fn filter<P: FnMut(&I::Item) -> bool>(self, predicate: P) -> ParIter<iter::Filter<I, P>> {
        ParIter(self.0.filter(predicate))
    }

    pub fn filter_map<R, F: FnMut(I::Item) -> Option<R>>(
        self,
        f: F,
    ) -> ParIter<iter::FilterMap<I, F>> {
        ParIter(self.0.filter_map(f))
    }

    pub fn flat_map<U: IntoIterator, F: FnMut(I::Item) -> U>(
        self,
        f: F,
    ) -> ParIter<iter::FlatMap<I, U, F>> {
        ParIter(self.0.flat_map(f))
    }

    pub fn zip<J: IntoParallelIterator>(self, other: J) -> ParIter<iter::Zip<I, J::Iter>> {
        ParIter(self.0.zip(other.into_par_iter().0))
    }

    pub fn enumerate(self) -> ParIter<iter::Enumerate<I>> {
        ParIter(self.0.enumerate())
    }

    pub fn copied<'a, T>(self) -> ParIter<iter::Copied<I>>
    where
        T: 'a + Copy,
        I: Iterator<Item = &'a T>,
    {
        ParIter(self.0.copied())
    }

    pub fn cloned<'a, T>(self) -> ParIter<iter::Cloned<I>>
    where
        T: 'a + Clone,
        I: Iterator<Item = &'a T>,
    {
        ParIter(self.0.cloned())
    }

    /// Rayon-shaped fold: `identity` seeds one accumulator per split. The
    /// sequential executor has exactly one split, so the result is a
    /// one-element "parallel" iterator carrying the full fold.
    pub fn fold<A, ID: Fn() -> A, F: FnMut(A, I::Item) -> A>(
        self,
        identity: ID,
        fold_op: F,
    ) -> ParIter<iter::Once<A>> {
        ParIter(iter::once(self.0.fold(identity(), fold_op)))
    }

    /// Rayon-shaped reduce: folds every item onto `identity()`.
    pub fn reduce<ID, F>(self, identity: ID, reduce_op: F) -> I::Item
    where
        ID: Fn() -> I::Item,
        F: FnMut(I::Item, I::Item) -> I::Item,
    {
        self.0.fold(identity(), reduce_op)
    }

    pub fn for_each<F: FnMut(I::Item)>(self, f: F) {
        self.0.for_each(f)
    }

    pub fn count(self) -> usize {
        self.0.count()
    }

    pub fn sum<S: iter::Sum<I::Item>>(self) -> S {
        self.0.sum()
    }

    pub fn max(self) -> Option<I::Item>
    where
        I::Item: Ord,
    {
        self.0.max()
    }

    pub fn min(self) -> Option<I::Item>
    where
        I::Item: Ord,
    {
        self.0.min()
    }

    pub fn max_by_key<K: Ord, F: FnMut(&I::Item) -> K>(self, key: F) -> Option<I::Item> {
        self.0.max_by_key(key)
    }

    pub fn min_by_key<K: Ord, F: FnMut(&I::Item) -> K>(self, key: F) -> Option<I::Item> {
        self.0.min_by_key(key)
    }

    pub fn any<P: FnMut(I::Item) -> bool>(mut self, predicate: P) -> bool {
        self.0.any(predicate)
    }

    pub fn all<P: FnMut(I::Item) -> bool>(mut self, predicate: P) -> bool {
        self.0.all(predicate)
    }

    pub fn collect<C: FromIterator<I::Item>>(self) -> C {
        self.0.collect()
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn fold_reduce_matches_sequential() {
        let v: Vec<u64> = (0..1000).collect();
        let total: u64 = v
            .par_iter()
            .fold(Vec::new, |mut acc, &x| {
                acc.push(x);
                acc
            })
            .reduce(Vec::new, |mut a, mut b| {
                a.append(&mut b);
                a
            })
            .iter()
            .sum();
        assert_eq!(total, 499_500);
    }

    #[test]
    fn chunks_zip_mutation() {
        let mut a = [0u32; 8];
        let b = [1u32; 8];
        a.par_chunks_mut(3)
            .zip(b.par_chunks(3))
            .for_each(|(ca, cb)| {
                for (x, y) in ca.iter_mut().zip(cb) {
                    *x += *y;
                }
            });
        assert_eq!(a, [1; 8]);
    }

    #[test]
    fn par_sort() {
        let mut v = vec![5, 3, 9, 1];
        v.par_sort_unstable();
        assert_eq!(v, [1, 3, 5, 9]);
    }
}
