//! Offline stand-in for the [`rayon`](https://crates.io/crates/rayon) crate,
//! backed by a real work-stealing thread pool.
//!
//! The build environment has no crates.io access, so this crate provides the
//! rayon 1.x API surface pardec uses — `join`/`scope`/`spawn`, the
//! `ThreadPool`/`ThreadPoolBuilder` pair (including `build_global` and the
//! `RAYON_NUM_THREADS` environment variable), and the parallel-iterator
//! stack (`par_iter`, `par_iter_mut`, `into_par_iter`, `par_chunks{,_mut}`,
//! `par_sort_unstable{,_by,_by_key}`, `map`/`filter`/`filter_map`/
//! `flat_map`/`fold`/`reduce`/`zip`/`enumerate` and the usual consumers) —
//! executing on `std::thread` workers with per-worker LIFO deques and FIFO
//! stealing ([`pool`]).
//!
//! # Determinism guarantee (stronger than real rayon)
//!
//! Reductions split by input length only ([`iter`] module docs): the merge
//! tree never depends on the pool size, and partial results merge
//! left-to-right. For a fixed input, every consumer — including
//! floating-point `sum()` and order-sensitive `fold(..).reduce(..)`
//! pipelines — returns bit-identical results at 1 thread and at N threads.
//! Real rayon only promises this for associative+commutative operations;
//! code written against this shim therefore stays correct (though possibly
//! not bit-reproducible) when the real crate is swapped back in.
//!
//! Swapping in real rayon remains a one-line `Cargo.toml` change; see
//! `shims/README.md`.

mod iter;
mod pool;
mod slice;

pub use pool::{
    current_num_threads, join, scope, spawn, Scope, ThreadPool, ThreadPoolBuildError,
    ThreadPoolBuilder,
};

pub use iter::{
    FromParallelIterator, IndexedParallelIterator, IntoParallelIterator, IntoParallelRefIterator,
    IntoParallelRefMutIterator, ParallelIterator,
};

pub use slice::{ParallelSlice, ParallelSliceMut};

/// The traits needed to call parallel-iterator methods, mirroring
/// `rayon::prelude`.
pub mod prelude {
    pub use crate::iter::{
        FromParallelIterator, IndexedParallelIterator, IntoParallelIterator,
        IntoParallelRefIterator, IntoParallelRefMutIterator, ParallelIterator,
    };
    pub use crate::slice::{ParallelSlice, ParallelSliceMut};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn join_returns_both_results() {
        let (a, b) = join(|| 2 + 2, || "ok");
        assert_eq!(a, 4);
        assert_eq!(b, "ok");
    }

    #[test]
    fn nested_joins_compute_recursive_sum() {
        fn sum(range: std::ops::Range<u64>) -> u64 {
            let n = range.end - range.start;
            if n <= 8 {
                range.sum()
            } else {
                let mid = range.start + n / 2;
                let (a, b) = join(|| sum(range.start..mid), || sum(mid..range.end));
                a + b
            }
        }
        assert_eq!(sum(0..10_000), 10_000 * 9_999 / 2);
    }

    #[test]
    fn join_propagates_panics() {
        let r = std::panic::catch_unwind(|| join(|| panic!("left"), || 1));
        assert!(r.is_err());
        let r = std::panic::catch_unwind(|| join(|| 1, || panic!("right")));
        assert!(r.is_err());
    }

    #[test]
    fn scope_runs_borrowed_spawns_to_completion() {
        let counter = AtomicUsize::new(0);
        scope(|s| {
            for _ in 0..64 {
                s.spawn(|inner| {
                    counter.fetch_add(1, Ordering::Relaxed);
                    inner.spawn(|_| {
                        counter.fetch_add(1, Ordering::Relaxed);
                    });
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 128);
    }

    #[test]
    fn explicit_pool_install_reports_its_size() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        assert_eq!(pool.current_num_threads(), 3);
        let inside = pool.install(current_num_threads);
        assert_eq!(inside, 3);
    }

    #[test]
    fn map_filter_sum_matches_sequential() {
        let v: Vec<u64> = (0..100_000).collect();
        let par: u64 = v.par_iter().map(|&x| x * 3).filter(|x| x % 2 == 0).sum();
        let seq: u64 = v.iter().map(|&x| x * 3).filter(|x| x % 2 == 0).sum();
        assert_eq!(par, seq);
    }

    #[test]
    fn collect_preserves_order() {
        let squares: Vec<u64> = (0u64..50_000).into_par_iter().map(|x| x * x).collect();
        assert!(squares
            .iter()
            .enumerate()
            .all(|(i, &sq)| sq == (i * i) as u64));
    }

    #[test]
    fn fold_reduce_preserves_left_to_right_order() {
        let v: Vec<u32> = (0..10_000).collect();
        let gathered: Vec<u32> = v
            .par_iter()
            .fold(Vec::new, |mut acc, &x| {
                acc.push(x);
                acc
            })
            .reduce(Vec::new, |mut a, mut b| {
                a.append(&mut b);
                a
            });
        assert_eq!(gathered, v);
    }

    #[test]
    fn chunks_zip_enumerate_mutation() {
        let mut a = [0u32; 100];
        let b = [1u32; 100];
        a.par_chunks_mut(7)
            .zip(b.par_chunks(7))
            .enumerate()
            .for_each(|(i, (ca, cb))| {
                for (x, y) in ca.iter_mut().zip(cb) {
                    *x += *y + i as u32;
                }
            });
        for (pos, &x) in a.iter().enumerate() {
            assert_eq!(x, 1 + (pos / 7) as u32);
        }
    }

    #[test]
    fn minmax_match_sequential_tie_breaking() {
        let v = vec![3u32, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5];
        assert_eq!(v.par_iter().max(), v.iter().max());
        assert_eq!(v.par_iter().min(), v.iter().min());
        assert_eq!(v.par_iter().copied().max(), Some(9));
        let words = ["bb", "a", "cc", "dd", "e"];
        assert_eq!(
            words.par_iter().max_by_key(|w| w.len()),
            words.iter().max_by_key(|w| w.len())
        );
        assert_eq!(
            words.par_iter().min_by_key(|w| w.len()),
            words.iter().min_by_key(|w| w.len())
        );
    }

    #[test]
    fn any_all_count_filter_map() {
        let v: Vec<i64> = (-500..500).collect();
        assert!(v.par_iter().any(|&x| x == 250));
        assert!(!v.par_iter().any(|&x| x == 500));
        assert!(v.par_iter().all(|&x| x < 500));
        assert_eq!(v.par_iter().filter(|&&x| x >= 0).count(), 500);
        let doubled_evens: Vec<i64> = v
            .par_iter()
            .filter_map(|&x| if x % 2 == 0 { Some(x * 2) } else { None })
            .collect();
        assert_eq!(doubled_evens.len(), 500);
        assert_eq!(doubled_evens[0], -1000);
    }

    #[test]
    fn flat_map_preserves_order() {
        let out: Vec<u32> = (0u32..100)
            .into_par_iter()
            .flat_map(|x| vec![x * 10, x * 10 + 1])
            .collect();
        let expected: Vec<u32> = (0u32..100).flat_map(|x| [x * 10, x * 10 + 1]).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn par_sort_matches_sequential_sort() {
        let mut rng_state = 0x2545F4914F6CDD1Du64;
        let mut v: Vec<u64> = (0..50_000)
            .map(|_| {
                rng_state ^= rng_state << 13;
                rng_state ^= rng_state >> 7;
                rng_state ^= rng_state << 17;
                rng_state
            })
            .collect();
        let mut expected = v.clone();
        expected.sort_unstable();
        v.par_sort_unstable();
        assert_eq!(v, expected);

        let mut pairs: Vec<(u32, u32)> = (0..10_000u32).map(|i| (i % 97, i)).collect();
        let mut expected = pairs.clone();
        expected.sort_unstable_by_key(|&(a, _)| a);
        pairs.par_sort_unstable_by_key(|&(a, _)| a);
        // Keys agree even where full tuples may be permuted within a key.
        assert_eq!(
            pairs.iter().map(|p| p.0).collect::<Vec<_>>(),
            expected.iter().map(|p| p.0).collect::<Vec<_>>()
        );
    }

    /// The central determinism claim: float reductions are bit-identical
    /// across pool sizes because the merge tree depends only on the length.
    #[test]
    fn float_sum_bit_identical_across_pool_sizes() {
        let data: Vec<f64> = (1..200_000u64).map(|x| 1.0 / x as f64).collect();
        let run = |threads: usize| -> f64 {
            let pool = ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            pool.install(|| data.par_iter().sum::<f64>())
        };
        let s1 = run(1);
        let s4 = run(4);
        assert_eq!(s1.to_bits(), s4.to_bits());
    }

    #[test]
    fn work_actually_distributes_across_workers() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let seen: Mutex<HashSet<std::thread::ThreadId>> = Mutex::new(HashSet::new());
        pool.install(|| {
            (0..256u32).into_par_iter().for_each(|_| {
                seen.lock().unwrap().insert(std::thread::current().id());
                std::thread::sleep(std::time::Duration::from_micros(200));
            });
        });
        // All participating threads must be pool workers (the calling thread
        // migrates into the pool rather than draining work itself).
        let seen = seen.lock().unwrap();
        assert!(!seen.is_empty() && seen.len() <= 4, "saw {}", seen.len());
    }

    #[test]
    fn empty_inputs_are_sound() {
        let empty: Vec<u32> = Vec::new();
        assert_eq!(empty.par_iter().count(), 0);
        assert_eq!(empty.par_iter().copied().max(), None);
        assert_eq!(empty.par_iter().map(|&x| x).sum::<u32>(), 0);
        let collected: Vec<u32> = (0u32..0).into_par_iter().collect();
        assert!(collected.is_empty());
        let folded: Vec<u32> = empty
            .par_iter()
            .fold(Vec::new, |mut acc, &x| {
                acc.push(x);
                acc
            })
            .reduce(Vec::new, |mut a, mut b| {
                a.append(&mut b);
                a
            });
        assert!(folded.is_empty());
    }

    /// Signed ranges spanning more than the signed max must size and split
    /// via the unsigned twin instead of overflowing (mirrors real rayon).
    #[test]
    fn signed_ranges_wider_than_signed_max() {
        let span = ((i32::MIN)..(i32::MIN + 10)).into_par_iter().count();
        assert_eq!(span, 10);
        // A range wider than i32::MAX elements: count via sampling the
        // boundary behaviour only (full iteration would be ~4 billion
        // items) — sum a thin slice at each end instead.
        let low: i64 = ((i32::MIN..i32::MIN + 3).into_par_iter())
            .map(|x| x as i64)
            .sum();
        assert_eq!(low, 3 * i32::MIN as i64 + 3);
        let wide = (i32::MIN..i32::MAX).into_par_iter();
        assert_eq!(wide.len(), u32::MAX as usize);
        let tiny: Vec<i64> = (-2i64..2).into_par_iter().collect();
        assert_eq!(tiny, vec![-2, -1, 0, 1]);
    }
}
