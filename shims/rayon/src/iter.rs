//! Parallel iterators over the work-stealing pool.
//!
//! # Execution model
//!
//! Every parallel iterator bottoms out in a [`Producer`]: an exactly-sized
//! source that can be split at an index and drained sequentially. Consuming
//! operations reduce the iterator with a `(identity, fold, merge)` triple:
//! the producer is split recursively down to leaves, each leaf is folded
//! sequentially (seeded with `identity()`), and sibling partial results are
//! combined with `merge(left, right)` — always in left-to-right order.
//!
//! # Determinism
//!
//! The split tree is a pure function of the input **length**: leaves hold at
//! most `ceil(len / SPLIT_FANOUT)` items and splitting always halves at
//! `len / 2`. The worker count is never consulted, so the merge tree — and
//! therefore the result, including floating-point reductions — is
//! bit-identical whether the pool has 1 thread or 64. Threads only change
//! *where* leaves execute, never *what* is combined with what.
//!
//! Adapter closures are shared by reference across workers (hence the
//! rayon-matching `Fn + Sync` bounds), never cloned.

use crate::pool::join;

/// Upper bound on the number of leaves a single reduction is split into.
/// Fixed (never derived from the worker count) to keep the merge tree — and
/// with it every reduction result — independent of the pool size.
const SPLIT_FANOUT: usize = 256;

/// Lower bound on items per leaf for mid-sized inputs, so BFS frontiers of
/// a few hundred nodes don't degenerate into one `join` per node. Also a
/// fixed constant — adaptive (steal-driven) splitting would be faster but
/// break the determinism guarantee.
const MIN_LEAF: usize = 16;

/// Inputs at or below this length split all the way down to single items:
/// tiny fan-outs are exactly where each item tends to be a whole graph
/// traversal (BFS per iFUB fringe node, Dijkstra per cluster center), so
/// serializing them would forfeit the dominant parallelism win. The rule
/// stays a pure function of the length, preserving determinism.
const SMALL_INPUT: usize = 2 * MIN_LEAF;

fn leaf_size(len: usize) -> usize {
    if len <= SMALL_INPUT {
        1
    } else {
        len.div_ceil(SPLIT_FANOUT).max(MIN_LEAF)
    }
}

// ---------------------------------------------------------------------------
// Producer: splittable sources
// ---------------------------------------------------------------------------

/// An exactly-sized, index-splittable source of items (the shim-internal
/// analogue of rayon's `Producer`). Public only because associated types of
/// the public traits name it; application code never touches it.
#[doc(hidden)]
pub trait Producer: Sized + Send {
    type Item: Send;
    type IntoIter: Iterator<Item = Self::Item>;

    fn len(&self) -> usize;
    /// Splits into `[0, index)` and `[index, len)`.
    fn split_at(self, index: usize) -> (Self, Self);
    fn into_seq_iter(self) -> Self::IntoIter;
}

/// Recursive split-and-merge driver. Sibling subtrees run under
/// [`crate::join`]; merges happen strictly left-to-right.
fn drive<P, A, ID, F, M>(producer: P, leaf: usize, id: &ID, fold: &F, merge: &M) -> A
where
    P: Producer,
    A: Send,
    ID: Fn() -> A + Sync,
    F: Fn(A, P::Item) -> A + Sync,
    M: Fn(A, A) -> A + Sync,
{
    let len = producer.len();
    if len <= leaf {
        producer.into_seq_iter().fold(id(), fold)
    } else {
        let (left, right) = producer.split_at(len / 2);
        let (a, b) = join(
            || drive(left, leaf, id, fold, merge),
            || drive(right, leaf, id, fold, merge),
        );
        merge(a, b)
    }
}

/// Borrowed-slice producer (`par_iter`).
#[doc(hidden)]
pub struct SliceProducer<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync> Producer for SliceProducer<'a, T> {
    type Item = &'a T;
    type IntoIter = std::slice::Iter<'a, T>;

    fn len(&self) -> usize {
        self.slice.len()
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (l, r) = self.slice.split_at(index);
        (SliceProducer { slice: l }, SliceProducer { slice: r })
    }

    fn into_seq_iter(self) -> Self::IntoIter {
        self.slice.iter()
    }
}

/// Mutable-slice producer (`par_iter_mut`).
#[doc(hidden)]
pub struct SliceMutProducer<'a, T> {
    slice: &'a mut [T],
}

impl<'a, T: Send> Producer for SliceMutProducer<'a, T> {
    type Item = &'a mut T;
    type IntoIter = std::slice::IterMut<'a, T>;

    fn len(&self) -> usize {
        self.slice.len()
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (l, r) = self.slice.split_at_mut(index);
        (SliceMutProducer { slice: l }, SliceMutProducer { slice: r })
    }

    fn into_seq_iter(self) -> Self::IntoIter {
        self.slice.iter_mut()
    }
}

/// `par_chunks` producer; indexes (and splits) in whole-chunk units so chunk
/// boundaries are identical to the sequential `chunks()`.
#[doc(hidden)]
pub struct ChunksProducer<'a, T> {
    pub(crate) slice: &'a [T],
    pub(crate) chunk: usize,
}

impl<'a, T: Sync> Producer for ChunksProducer<'a, T> {
    type Item = &'a [T];
    type IntoIter = std::slice::Chunks<'a, T>;

    fn len(&self) -> usize {
        self.slice.len().div_ceil(self.chunk)
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let elems = (index * self.chunk).min(self.slice.len());
        let (l, r) = self.slice.split_at(elems);
        (
            ChunksProducer {
                slice: l,
                chunk: self.chunk,
            },
            ChunksProducer {
                slice: r,
                chunk: self.chunk,
            },
        )
    }

    fn into_seq_iter(self) -> Self::IntoIter {
        self.slice.chunks(self.chunk)
    }
}

/// `par_chunks_mut` producer.
#[doc(hidden)]
pub struct ChunksMutProducer<'a, T> {
    pub(crate) slice: &'a mut [T],
    pub(crate) chunk: usize,
}

impl<'a, T: Send> Producer for ChunksMutProducer<'a, T> {
    type Item = &'a mut [T];
    type IntoIter = std::slice::ChunksMut<'a, T>;

    fn len(&self) -> usize {
        self.slice.len().div_ceil(self.chunk)
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let elems = (index * self.chunk).min(self.slice.len());
        let (l, r) = self.slice.split_at_mut(elems);
        (
            ChunksMutProducer {
                slice: l,
                chunk: self.chunk,
            },
            ChunksMutProducer {
                slice: r,
                chunk: self.chunk,
            },
        )
    }

    fn into_seq_iter(self) -> Self::IntoIter {
        self.slice.chunks_mut(self.chunk)
    }
}

/// Integer-range producer (`(0..n).into_par_iter()`).
#[doc(hidden)]
pub struct RangeProducer<T> {
    range: std::ops::Range<T>,
}

macro_rules! range_producer {
    ($(($t:ty, $unsigned:ty)),*) => {$(
        impl Producer for RangeProducer<$t> {
            type Item = $t;
            type IntoIter = std::ops::Range<$t>;

            fn len(&self) -> usize {
                if self.range.end > self.range.start {
                    // Two's-complement distance via the unsigned twin, so
                    // signed ranges wider than the signed max (e.g.
                    // i32::MIN..i32::MAX) don't overflow.
                    self.range.end.wrapping_sub(self.range.start) as $unsigned as usize
                } else {
                    0
                }
            }

            fn split_at(self, index: usize) -> (Self, Self) {
                // Modular arithmetic makes the cast-wrap of huge signed
                // offsets land on the right midpoint.
                let mid = self.range.start.wrapping_add(index as $t);
                (
                    RangeProducer { range: self.range.start..mid },
                    RangeProducer { range: mid..self.range.end },
                )
            }

            fn into_seq_iter(self) -> Self::IntoIter {
                self.range
            }
        }

        impl IntoParallelIterator for std::ops::Range<$t> {
            type Iter = ParIter<RangeProducer<$t>>;
            type Item = $t;

            fn into_par_iter(self) -> Self::Iter {
                ParIter {
                    producer: RangeProducer { range: self },
                }
            }
        }
    )*};
}

range_producer!(
    (u8, u8),
    (u16, u16),
    (u32, u32),
    (u64, u64),
    (usize, usize),
    (i32, u32),
    (i64, u64)
);

/// Owning `Vec` producer (`vec.into_par_iter()`). Splits via `split_off`,
/// trading an allocation per split for fully safe ownership transfer.
#[doc(hidden)]
pub struct VecProducer<T> {
    vec: Vec<T>,
}

impl<T: Send> Producer for VecProducer<T> {
    type Item = T;
    type IntoIter = std::vec::IntoIter<T>;

    fn len(&self) -> usize {
        self.vec.len()
    }

    fn split_at(mut self, index: usize) -> (Self, Self) {
        let tail = self.vec.split_off(index);
        (self, VecProducer { vec: tail })
    }

    fn into_seq_iter(self) -> Self::IntoIter {
        self.vec.into_iter()
    }
}

/// Lock-step pair producer backing `zip` (and, with a range, `enumerate`).
#[doc(hidden)]
pub struct ZipProducer<A, B>(A, B);

impl<A: Producer, B: Producer> Producer for ZipProducer<A, B> {
    type Item = (A::Item, B::Item);
    type IntoIter = std::iter::Zip<A::IntoIter, B::IntoIter>;

    fn len(&self) -> usize {
        self.0.len().min(self.1.len())
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (a1, a2) = self.0.split_at(index);
        let (b1, b2) = self.1.split_at(index);
        (ZipProducer(a1, b1), ZipProducer(a2, b2))
    }

    fn into_seq_iter(self) -> Self::IntoIter {
        self.0.into_seq_iter().zip(self.1.into_seq_iter())
    }
}

// ---------------------------------------------------------------------------
// ParallelIterator
// ---------------------------------------------------------------------------

/// A parallel iterator (mirror of `rayon::iter::ParallelIterator`).
///
/// Adapters (`map`, `filter`, …) compose lazily; consumers (`for_each`,
/// `reduce`, `collect`, …) execute on the pool via the reduction model
/// described in the [module docs](self).
pub trait ParallelIterator: Sized + Send {
    /// The item type produced.
    type Item: Send;

    /// Shim-internal executor: reduce the whole iterator with the given
    /// `(identity, fold, merge)` triple. `merge(a, id())` must equal `a`.
    #[doc(hidden)]
    fn exec<A, ID, F, M>(self, id: &ID, fold: &F, merge: &M) -> A
    where
        A: Send,
        ID: Fn() -> A + Sync,
        F: Fn(A, Self::Item) -> A + Sync,
        M: Fn(A, A) -> A + Sync;

    /// Maps each item through `f`.
    fn map<R, F>(self, f: F) -> Map<Self, F>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Sync + Send,
    {
        Map { base: self, f }
    }

    /// Keeps the items for which `predicate` is true.
    fn filter<P>(self, predicate: P) -> Filter<Self, P>
    where
        P: Fn(&Self::Item) -> bool + Sync + Send,
    {
        Filter {
            base: self,
            predicate,
        }
    }

    /// Maps and filters in one pass.
    fn filter_map<R, F>(self, f: F) -> FilterMap<Self, F>
    where
        R: Send,
        F: Fn(Self::Item) -> Option<R> + Sync + Send,
    {
        FilterMap { base: self, f }
    }

    /// Maps each item to a nested collection and flattens the results,
    /// preserving order.
    fn flat_map<U, F>(self, f: F) -> FlatMap<Self, F>
    where
        U: IntoParallelIterator,
        F: Fn(Self::Item) -> U + Sync + Send,
    {
        FlatMap { base: self, f }
    }

    /// Copies `&T` items (mirror of `Iterator::copied`).
    fn copied<'a, T>(self) -> Copied<Self>
    where
        T: 'a + Copy + Send + Sync,
        Self: ParallelIterator<Item = &'a T>,
    {
        Copied { base: self }
    }

    /// Clones `&T` items (mirror of `Iterator::cloned`).
    fn cloned<'a, T>(self) -> Cloned<Self>
    where
        T: 'a + Clone + Send + Sync,
        Self: ParallelIterator<Item = &'a T>,
    {
        Cloned { base: self }
    }

    /// Rayon-shaped fold: produces **one accumulator per leaf** of the split
    /// tree (seeded with `identity()`), yielding a parallel iterator of
    /// accumulators that is typically consumed by [`reduce`].
    ///
    /// [`reduce`]: ParallelIterator::reduce
    fn fold<A, ID, F>(self, identity: ID, fold_op: F) -> Fold<Self, ID, F>
    where
        A: Send,
        ID: Fn() -> A + Sync + Send,
        F: Fn(A, Self::Item) -> A + Sync + Send,
    {
        Fold {
            base: self,
            identity,
            fold_op,
        }
    }

    /// Reduces all items to one with `op`, seeding every leaf with
    /// `identity()`. Partial results merge left-to-right, so the outcome is
    /// deterministic (and thread-count independent) even for
    /// non-commutative `op`.
    fn reduce<ID, OP>(self, identity: ID, op: OP) -> Self::Item
    where
        ID: Fn() -> Self::Item + Sync + Send,
        OP: Fn(Self::Item, Self::Item) -> Self::Item + Sync + Send,
    {
        self.exec(&identity, &|a, b| op(a, b), &|a, b| op(a, b))
    }

    /// Calls `op` on every item.
    fn for_each<OP>(self, op: OP)
    where
        OP: Fn(Self::Item) + Sync + Send,
    {
        self.exec(&|| (), &|(), x| op(x), &|(), ()| ())
    }

    /// Number of items.
    fn count(self) -> usize {
        self.exec(&|| 0usize, &|c, _| c + 1, &|a, b| a + b)
    }

    /// Sums the items. Leaf sums fold left-to-right and partial sums merge
    /// left-to-right, so even floating-point totals are reproducible across
    /// pool sizes.
    fn sum<S>(self) -> S
    where
        S: Send + std::iter::Sum<Self::Item> + std::iter::Sum<S>,
    {
        use std::iter::{empty, once};
        self.exec(
            &|| empty::<Self::Item>().sum::<S>(),
            &|a, x| once(a).chain(once(once(x).sum::<S>())).sum::<S>(),
            &|a, b| once(a).chain(once(b)).sum::<S>(),
        )
    }

    /// Largest item (last maximal one on ties, like `Iterator::max`).
    fn max(self) -> Option<Self::Item>
    where
        Self::Item: Ord,
    {
        self.exec(
            &|| None,
            &|a: Option<Self::Item>, x| {
                Some(match a {
                    Some(b) if x < b => b,
                    _ => x,
                })
            },
            &|a, b| match (a, b) {
                (Some(l), Some(r)) => Some(if r < l { l } else { r }),
                (l, None) => l,
                (None, r) => r,
            },
        )
    }

    /// Smallest item (first minimal one on ties, like `Iterator::min`).
    fn min(self) -> Option<Self::Item>
    where
        Self::Item: Ord,
    {
        self.exec(
            &|| None,
            &|a: Option<Self::Item>, x| {
                Some(match a {
                    Some(b) if x < b => x,
                    Some(b) => b,
                    None => x,
                })
            },
            &|a, b| match (a, b) {
                (Some(l), Some(r)) => Some(if r < l { r } else { l }),
                (l, None) => l,
                (None, r) => r,
            },
        )
    }

    /// Item with the largest key (last one on ties, like
    /// `Iterator::max_by_key`).
    fn max_by_key<K, F>(self, f: F) -> Option<Self::Item>
    where
        K: Ord + Send,
        F: Fn(&Self::Item) -> K + Sync + Send,
    {
        self.exec(
            &|| None,
            &|a: Option<(K, Self::Item)>, x| {
                let k = f(&x);
                Some(match a {
                    Some((bk, b)) if k < bk => (bk, b),
                    _ => (k, x),
                })
            },
            &|a, b| match (a, b) {
                (Some(l), Some(r)) => Some(if r.0 < l.0 { l } else { r }),
                (l, None) => l,
                (None, r) => r,
            },
        )
        .map(|(_, x)| x)
    }

    /// Item with the smallest key (first one on ties, like
    /// `Iterator::min_by_key`).
    fn min_by_key<K, F>(self, f: F) -> Option<Self::Item>
    where
        K: Ord + Send,
        F: Fn(&Self::Item) -> K + Sync + Send,
    {
        self.exec(
            &|| None,
            &|a: Option<(K, Self::Item)>, x| {
                let k = f(&x);
                Some(match a {
                    Some((bk, _)) if k < bk => (k, x),
                    Some((bk, b)) => (bk, b),
                    None => (k, x),
                })
            },
            &|a, b| match (a, b) {
                (Some(l), Some(r)) => Some(if r.0 < l.0 { r } else { l }),
                (l, None) => l,
                (None, r) => r,
            },
        )
        .map(|(_, x)| x)
    }

    /// True if any item satisfies `predicate` (no short-circuit guarantee).
    fn any<P>(self, predicate: P) -> bool
    where
        P: Fn(Self::Item) -> bool + Sync + Send,
    {
        self.exec(&|| false, &|a, x| a | predicate(x), &|a, b| a | b)
    }

    /// True if every item satisfies `predicate` (no short-circuit
    /// guarantee).
    fn all<P>(self, predicate: P) -> bool
    where
        P: Fn(Self::Item) -> bool + Sync + Send,
    {
        self.exec(&|| true, &|a, x| a & predicate(x), &|a, b| a & b)
    }

    /// Collects into `C`, preserving the source order.
    fn collect<C>(self) -> C
    where
        C: FromParallelIterator<Self::Item>,
    {
        C::from_par_iter(self)
    }
}

/// Collection types constructible from a parallel iterator (mirror of
/// `rayon::iter::FromParallelIterator`).
pub trait FromParallelIterator<T: Send> {
    /// Builds the collection, preserving the iterator's order.
    fn from_par_iter<I>(par_iter: I) -> Self
    where
        I: IntoParallelIterator<Item = T>;
}

impl<T: Send> FromParallelIterator<T> for Vec<T> {
    fn from_par_iter<I>(par_iter: I) -> Self
    where
        I: IntoParallelIterator<Item = T>,
    {
        par_iter.into_par_iter().exec(
            &Vec::new,
            &|mut acc, x| {
                acc.push(x);
                acc
            },
            &|mut a, mut b| {
                a.append(&mut b);
                a
            },
        )
    }
}

// ---------------------------------------------------------------------------
// Conversions
// ---------------------------------------------------------------------------

/// Conversion into a parallel iterator (mirror of
/// `rayon::iter::IntoParallelIterator`).
pub trait IntoParallelIterator {
    type Iter: ParallelIterator<Item = Self::Item>;
    type Item: Send;

    fn into_par_iter(self) -> Self::Iter;
}

/// Every parallel iterator trivially converts into itself.
impl<T: ParallelIterator> IntoParallelIterator for T {
    type Iter = T;
    type Item = T::Item;

    fn into_par_iter(self) -> T {
        self
    }
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Iter = ParIter<VecProducer<T>>;
    type Item = T;

    fn into_par_iter(self) -> Self::Iter {
        ParIter {
            producer: VecProducer { vec: self },
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelIterator for &'a [T] {
    type Iter = ParIter<SliceProducer<'a, T>>;
    type Item = &'a T;

    fn into_par_iter(self) -> Self::Iter {
        ParIter {
            producer: SliceProducer { slice: self },
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelIterator for &'a Vec<T> {
    type Iter = ParIter<SliceProducer<'a, T>>;
    type Item = &'a T;

    fn into_par_iter(self) -> Self::Iter {
        self.as_slice().into_par_iter()
    }
}

impl<'a, T: Send + 'a> IntoParallelIterator for &'a mut [T] {
    type Iter = ParIter<SliceMutProducer<'a, T>>;
    type Item = &'a mut T;

    fn into_par_iter(self) -> Self::Iter {
        ParIter {
            producer: SliceMutProducer { slice: self },
        }
    }
}

impl<'a, T: Send + 'a> IntoParallelIterator for &'a mut Vec<T> {
    type Iter = ParIter<SliceMutProducer<'a, T>>;
    type Item = &'a mut T;

    fn into_par_iter(self) -> Self::Iter {
        self.as_mut_slice().into_par_iter()
    }
}

/// `par_iter()` on everything whose reference converts (mirror of
/// `rayon::iter::IntoParallelRefIterator`).
pub trait IntoParallelRefIterator<'data> {
    type Iter: ParallelIterator<Item = Self::Item>;
    type Item: Send + 'data;

    fn par_iter(&'data self) -> Self::Iter;
}

impl<'data, I: 'data + ?Sized> IntoParallelRefIterator<'data> for I
where
    &'data I: IntoParallelIterator,
{
    type Iter = <&'data I as IntoParallelIterator>::Iter;
    type Item = <&'data I as IntoParallelIterator>::Item;

    fn par_iter(&'data self) -> Self::Iter {
        self.into_par_iter()
    }
}

/// `par_iter_mut()` counterpart (mirror of
/// `rayon::iter::IntoParallelRefMutIterator`).
pub trait IntoParallelRefMutIterator<'data> {
    type Iter: ParallelIterator<Item = Self::Item>;
    type Item: Send + 'data;

    fn par_iter_mut(&'data mut self) -> Self::Iter;
}

impl<'data, I: 'data + ?Sized> IntoParallelRefMutIterator<'data> for I
where
    &'data mut I: IntoParallelIterator,
{
    type Iter = <&'data mut I as IntoParallelIterator>::Iter;
    type Item = <&'data mut I as IntoParallelIterator>::Item;

    fn par_iter_mut(&'data mut self) -> Self::Iter {
        self.into_par_iter()
    }
}

// ---------------------------------------------------------------------------
// Indexed iterators (zip / enumerate)
// ---------------------------------------------------------------------------

/// A parallel iterator with a known exact length, supporting position-aware
/// adapters (mirror of `rayon::iter::IndexedParallelIterator`).
pub trait IndexedParallelIterator: ParallelIterator {
    #[doc(hidden)]
    type Producer: Producer<Item = Self::Item>;

    /// Exact number of items.
    fn len(&self) -> usize;

    #[doc(hidden)]
    fn into_producer(self) -> Self::Producer;

    /// Whether the iterator is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterates two indexed iterators in lock step, truncating to the
    /// shorter.
    fn zip<Z>(
        self,
        other: Z,
    ) -> ParIter<ZipProducer<Self::Producer, <Z::Iter as IndexedParallelIterator>::Producer>>
    where
        Z: IntoParallelIterator,
        Z::Iter: IndexedParallelIterator,
    {
        ParIter {
            producer: ZipProducer(self.into_producer(), other.into_par_iter().into_producer()),
        }
    }

    /// Pairs each item with its index.
    fn enumerate(self) -> ParIter<ZipProducer<RangeProducer<usize>, Self::Producer>> {
        let n = self.len();
        ParIter {
            producer: ZipProducer(RangeProducer { range: 0..n }, self.into_producer()),
        }
    }
}

/// The producer-backed parallel iterator type: what slices, ranges, vectors,
/// `zip`, and `enumerate` hand out.
pub struct ParIter<P> {
    pub(crate) producer: P,
}

impl<P: Producer> ParallelIterator for ParIter<P> {
    type Item = P::Item;

    fn exec<A, ID, F, M>(self, id: &ID, fold: &F, merge: &M) -> A
    where
        A: Send,
        ID: Fn() -> A + Sync,
        F: Fn(A, Self::Item) -> A + Sync,
        M: Fn(A, A) -> A + Sync,
    {
        let leaf = leaf_size(self.producer.len());
        drive(self.producer, leaf, id, fold, merge)
    }
}

impl<P: Producer> IndexedParallelIterator for ParIter<P> {
    type Producer = P;

    fn len(&self) -> usize {
        self.producer.len()
    }

    fn into_producer(self) -> P {
        self.producer
    }
}

// ---------------------------------------------------------------------------
// Adapters
// ---------------------------------------------------------------------------

/// Mapping adapter; see [`ParallelIterator::map`].
pub struct Map<B, F> {
    base: B,
    f: F,
}

impl<B, R, F> ParallelIterator for Map<B, F>
where
    B: ParallelIterator,
    R: Send,
    F: Fn(B::Item) -> R + Sync + Send,
{
    type Item = R;

    fn exec<A, ID, G, M>(self, id: &ID, fold: &G, merge: &M) -> A
    where
        A: Send,
        ID: Fn() -> A + Sync,
        G: Fn(A, Self::Item) -> A + Sync,
        M: Fn(A, A) -> A + Sync,
    {
        let f = self.f;
        self.base.exec(id, &|a, x| fold(a, f(x)), merge)
    }
}

/// Filtering adapter; see [`ParallelIterator::filter`].
pub struct Filter<B, P> {
    base: B,
    predicate: P,
}

impl<B, P> ParallelIterator for Filter<B, P>
where
    B: ParallelIterator,
    P: Fn(&B::Item) -> bool + Sync + Send,
{
    type Item = B::Item;

    fn exec<A, ID, G, M>(self, id: &ID, fold: &G, merge: &M) -> A
    where
        A: Send,
        ID: Fn() -> A + Sync,
        G: Fn(A, Self::Item) -> A + Sync,
        M: Fn(A, A) -> A + Sync,
    {
        let p = self.predicate;
        self.base
            .exec(id, &|a, x| if p(&x) { fold(a, x) } else { a }, merge)
    }
}

/// Filter-mapping adapter; see [`ParallelIterator::filter_map`].
pub struct FilterMap<B, F> {
    base: B,
    f: F,
}

impl<B, R, F> ParallelIterator for FilterMap<B, F>
where
    B: ParallelIterator,
    R: Send,
    F: Fn(B::Item) -> Option<R> + Sync + Send,
{
    type Item = R;

    fn exec<A, ID, G, M>(self, id: &ID, fold: &G, merge: &M) -> A
    where
        A: Send,
        ID: Fn() -> A + Sync,
        G: Fn(A, Self::Item) -> A + Sync,
        M: Fn(A, A) -> A + Sync,
    {
        let f = self.f;
        self.base.exec(
            id,
            &|a, x| match f(x) {
                Some(y) => fold(a, y),
                None => a,
            },
            merge,
        )
    }
}

/// Flattening adapter; see [`ParallelIterator::flat_map`]. Inner collections
/// are themselves reduced through the parallel machinery, then merged into
/// the running accumulator in source order.
pub struct FlatMap<B, F> {
    base: B,
    f: F,
}

impl<B, U, F> ParallelIterator for FlatMap<B, F>
where
    B: ParallelIterator,
    U: IntoParallelIterator,
    F: Fn(B::Item) -> U + Sync + Send,
{
    type Item = U::Item;

    fn exec<A, ID, G, M>(self, id: &ID, fold: &G, merge: &M) -> A
    where
        A: Send,
        ID: Fn() -> A + Sync,
        G: Fn(A, Self::Item) -> A + Sync,
        M: Fn(A, A) -> A + Sync,
    {
        let f = self.f;
        self.base.exec(
            id,
            &|a, x| merge(a, f(x).into_par_iter().exec(id, fold, merge)),
            merge,
        )
    }
}

/// Copying adapter; see [`ParallelIterator::copied`].
pub struct Copied<B> {
    base: B,
}

impl<'a, B, T> ParallelIterator for Copied<B>
where
    B: ParallelIterator<Item = &'a T>,
    T: 'a + Copy + Send + Sync,
{
    type Item = T;

    fn exec<A, ID, G, M>(self, id: &ID, fold: &G, merge: &M) -> A
    where
        A: Send,
        ID: Fn() -> A + Sync,
        G: Fn(A, Self::Item) -> A + Sync,
        M: Fn(A, A) -> A + Sync,
    {
        self.base.exec(id, &|a, x| fold(a, *x), merge)
    }
}

/// Cloning adapter; see [`ParallelIterator::cloned`].
pub struct Cloned<B> {
    base: B,
}

impl<'a, B, T> ParallelIterator for Cloned<B>
where
    B: ParallelIterator<Item = &'a T>,
    T: 'a + Clone + Send + Sync,
{
    type Item = T;

    fn exec<A, ID, G, M>(self, id: &ID, fold: &G, merge: &M) -> A
    where
        A: Send,
        ID: Fn() -> A + Sync,
        G: Fn(A, Self::Item) -> A + Sync,
        M: Fn(A, A) -> A + Sync,
    {
        self.base.exec(id, &|a, x| fold(a, x.clone()), merge)
    }
}

/// Per-leaf folding adapter; see [`ParallelIterator::fold`].
pub struct Fold<B, ID2, F2> {
    base: B,
    identity: ID2,
    fold_op: F2,
}

/// Downstream accumulator threaded through a [`Fold`]: `pending` is the
/// current leaf's (upstream-typed) accumulator, `done` the already-reduced
/// downstream value.
struct FoldState<T, A> {
    pending: Option<T>,
    done: Option<A>,
}

impl<B, A2, ID2, F2> ParallelIterator for Fold<B, ID2, F2>
where
    B: ParallelIterator,
    A2: Send,
    ID2: Fn() -> A2 + Sync + Send,
    F2: Fn(A2, B::Item) -> A2 + Sync + Send,
{
    type Item = A2;

    fn exec<A, ID, G, M>(self, id: &ID, fold: &G, merge: &M) -> A
    where
        A: Send,
        ID: Fn() -> A + Sync,
        G: Fn(A, Self::Item) -> A + Sync,
        M: Fn(A, A) -> A + Sync,
    {
        let (id2, f2) = (self.identity, self.fold_op);
        // Completes a partial state into a downstream value: any in-flight
        // leaf accumulator becomes one downstream item.
        let finish = |st: FoldState<A2, A>| -> A {
            let acc = st.done.unwrap_or_else(id);
            match st.pending {
                Some(leaf_acc) => fold(acc, leaf_acc),
                None => acc,
            }
        };
        let st = self.base.exec(
            &|| FoldState {
                pending: None,
                done: None,
            },
            &|mut st: FoldState<A2, A>, x| {
                st.pending = Some(f2(st.pending.take().unwrap_or_else(&id2), x));
                st
            },
            &|l, r| FoldState {
                pending: None,
                done: Some(merge(finish(l), finish(r))),
            },
        );
        finish(st)
    }
}
