//! The work-stealing thread-pool runtime.
//!
//! A [`Registry`] owns one [`std::thread`] worker per logical core (or
//! whatever [`ThreadPoolBuilder::num_threads`] / `RAYON_NUM_THREADS` asks
//! for). Every worker has its own LIFO deque of pending jobs; idle workers
//! steal from the *front* of their peers' deques (oldest job first, the
//! classic Chase–Lev discipline, here realized with `Mutex`-guarded
//! `VecDeque`s — the build environment has no crossbeam). Threads outside
//! the pool hand work in through a shared injector queue and block until it
//! completes.
//!
//! The primitive everything else reduces to is [`join`]: run two closures,
//! possibly in parallel, and return both results. The calling worker pushes
//! the second closure as a stack-allocated job, runs the first inline, and
//! then either pops the second back (nobody stole it — the common, zero
//! migration case) or helps execute other jobs until the thief finishes it.
//! Panics in either closure are captured and re-thrown on the caller, after
//! both sides have quiesced, so stack-held job state is never abandoned.

use std::any::Any;
use std::cell::{Cell, UnsafeCell};
use std::collections::VecDeque;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::Duration;

// ---------------------------------------------------------------------------
// Jobs
// ---------------------------------------------------------------------------

/// A type-erased pointer to a job living either on a joiner's stack
/// ([`StackJob`]) or on the heap ([`HeapJob`]). The pointee is guaranteed by
/// its owner to outlive execution: stack jobs are awaited before the owning
/// frame returns, heap jobs are owned by the reference itself.
struct JobRef {
    data: *const (),
    execute_fn: unsafe fn(*const ()),
}

// SAFETY: a JobRef is only ever executed once, and the pointee is Sync-safe
// by construction (its mutable state is only touched by the executor).
unsafe impl Send for JobRef {}

impl JobRef {
    unsafe fn execute(self) {
        (self.execute_fn)(self.data)
    }
}

enum JobResult<R> {
    Pending,
    Ok(R),
    Panicked(Box<dyn Any + Send>),
}

/// A job allocated on the stack of the thread calling [`join`]. The latch
/// flips exactly once, after the result slot is written, and the joiner
/// never returns before the latch is set — so the raw pointer in the
/// corresponding [`JobRef`] cannot dangle.
struct StackJob<F, R> {
    func: UnsafeCell<Option<F>>,
    result: UnsafeCell<JobResult<R>>,
    latch: Latch,
}

impl<F, R> StackJob<F, R>
where
    F: FnOnce() -> R,
{
    fn new(func: F) -> Self {
        StackJob {
            func: UnsafeCell::new(Some(func)),
            result: UnsafeCell::new(JobResult::Pending),
            latch: Latch::new(),
        }
    }

    /// # Safety
    /// The caller must keep `self` alive (and at a stable address) until the
    /// latch is set.
    unsafe fn as_job_ref(&self) -> JobRef {
        JobRef {
            data: self as *const Self as *const (),
            execute_fn: Self::execute,
        }
    }

    unsafe fn execute(ptr: *const ()) {
        let this = &*(ptr as *const Self);
        let func = (*this.func.get()).take().expect("job executed twice");
        let result = match panic::catch_unwind(AssertUnwindSafe(func)) {
            Ok(r) => JobResult::Ok(r),
            Err(p) => JobResult::Panicked(p),
        };
        *this.result.get() = result;
        this.latch.set();
    }

    /// Runs the closure on the current thread, bypassing the latch. Only
    /// valid when the job was never published (or was popped back un-stolen).
    fn run_inline(self) -> R {
        let func = self.func.into_inner().expect("job executed twice");
        func()
    }

    /// Retrieves the result after the latch has been observed set,
    /// propagating a captured panic.
    fn into_result(self) -> R {
        match self.result.into_inner() {
            JobResult::Ok(r) => r,
            JobResult::Panicked(p) => panic::resume_unwind(p),
            JobResult::Pending => unreachable!("latch set before result written"),
        }
    }
}

/// A heap-allocated, `'static` job (used by [`spawn`] and scope spawns).
struct HeapJob {
    func: Box<dyn FnOnce() + Send>,
}

impl HeapJob {
    /// Boxes `func` and returns the owning [`JobRef`] (hence not `-> Self`).
    #[allow(clippy::new_ret_no_self)]
    fn new(func: Box<dyn FnOnce() + Send>) -> JobRef {
        let boxed = Box::new(HeapJob { func });
        JobRef {
            data: Box::into_raw(boxed) as *const (),
            execute_fn: Self::execute,
        }
    }

    unsafe fn execute(ptr: *const ()) {
        let this = Box::from_raw(ptr as *mut HeapJob);
        // Panics are caught so a spawned task cannot take down a worker;
        // mirroring rayon's default would abort, which is unhelpful in an
        // offline test harness.
        if panic::catch_unwind(AssertUnwindSafe(this.func)).is_err() {
            eprintln!("pardec-rayon: a spawned task panicked (ignored)");
        }
    }
}

// ---------------------------------------------------------------------------
// Latch
// ---------------------------------------------------------------------------

/// One-shot completion flag with blocking waiters. The `Mutex` also provides
/// the happens-before edge between the executor's result write and the
/// joiner's result read.
struct Latch {
    done: Mutex<bool>,
    cond: Condvar,
}

impl Latch {
    fn new() -> Self {
        Latch {
            done: Mutex::new(false),
            cond: Condvar::new(),
        }
    }

    fn probe(&self) -> bool {
        *self.done.lock().unwrap()
    }

    fn set(&self) {
        // notify_all must happen while the lock is held: the instant a
        // waiter can observe `done == true` it may free the StackJob that
        // owns this latch, so the unlock at end of scope has to be the
        // setter's final touch of the latch memory.
        let mut done = self.done.lock().unwrap();
        *done = true;
        self.cond.notify_all();
    }

    /// Blocks until set (used by threads outside the pool, which have no
    /// queue to help drain).
    fn wait(&self) {
        let mut done = self.done.lock().unwrap();
        while !*done {
            done = self.cond.wait(done).unwrap();
        }
    }

    /// Blocks until set or `timeout`, whichever is first. Workers use this
    /// between steal attempts so a missed wakeup costs microseconds, not a
    /// hang.
    fn wait_timeout(&self, timeout: Duration) {
        let done = self.done.lock().unwrap();
        if !*done {
            let _ = self.cond.wait_timeout(done, timeout).unwrap();
        }
    }
}

// ---------------------------------------------------------------------------
// Registry (the pool proper)
// ---------------------------------------------------------------------------

/// Shared state of one thread pool.
pub(crate) struct Registry {
    /// Per-worker job deques. Owners push/pop at the back (LIFO, cache-warm);
    /// thieves steal from the front (FIFO, the oldest = biggest subtree).
    deques: Vec<Mutex<VecDeque<JobRef>>>,
    /// Jobs submitted by threads outside the pool.
    injector: Mutex<VecDeque<JobRef>>,
    /// Bumped (under the lock) on every publish, so sleepers can detect work
    /// that arrived between their last steal attempt and going to sleep.
    activity: Mutex<u64>,
    wake: Condvar,
    /// Workers currently inside the sleep protocol. Publishes skip the
    /// activity lock + notify entirely while everyone is busy, which is the
    /// steady state of a saturated pool — `join` then costs two deque ops.
    sleepers: AtomicUsize,
    terminate: AtomicBool,
    /// Live worker count, so `Drop` can wait for clean shutdown.
    running: AtomicUsize,
}

thread_local! {
    /// `(registry, worker index)` when the current thread is a pool worker.
    static WORKER: Cell<Option<(*const Registry, usize)>> = const { Cell::new(None) };
}

/// The implicitly-built global pool ([`ThreadPoolBuilder::build_global`] can
/// install one eagerly; first parallel use builds it lazily otherwise).
static GLOBAL: OnceLock<Arc<Registry>> = OnceLock::new();

/// Worker-sleep granularity. Publishes notify the condvar, so this is only a
/// safety net against lost wakeups.
const SLEEP_TICK: Duration = Duration::from_millis(1);

/// Number of threads the environment asks for: `RAYON_NUM_THREADS` if set to
/// a positive integer, otherwise the machine's available parallelism.
fn env_default_threads() -> usize {
    if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

pub(crate) fn global_registry() -> &'static Arc<Registry> {
    GLOBAL.get_or_init(|| Registry::new(env_default_threads()))
}

/// The registry the current thread should schedule on: its own pool when it
/// *is* a worker, the global pool otherwise.
fn current_registry() -> Arc<Registry> {
    WORKER.with(|w| match w.get() {
        // SAFETY: the pointer was stored by this worker's own run loop and
        // outlives the thread (the loop holds an `Arc`).
        Some((reg, _)) => unsafe { (*reg).arc_clone() },
        None => Arc::clone(global_registry()),
    })
}

impl Registry {
    fn new(num_threads: usize) -> Arc<Registry> {
        let num_threads = num_threads.max(1);
        let registry = Arc::new(Registry {
            deques: (0..num_threads)
                .map(|_| Mutex::new(VecDeque::new()))
                .collect(),
            injector: Mutex::new(VecDeque::new()),
            activity: Mutex::new(0),
            wake: Condvar::new(),
            sleepers: AtomicUsize::new(0),
            terminate: AtomicBool::new(false),
            running: AtomicUsize::new(num_threads),
        });
        for index in 0..num_threads {
            let reg = Arc::clone(&registry);
            std::thread::Builder::new()
                .name(format!("pardec-rayon-{index}"))
                .spawn(move || worker_loop(reg, index))
                .expect("failed to spawn pool worker");
        }
        registry
    }

    /// `Arc::clone` from a raw self pointer (worker TLS).
    ///
    /// # Safety
    /// `self` must be managed by an `Arc` that is still alive.
    unsafe fn arc_clone(&self) -> Arc<Registry> {
        let arc = std::mem::ManuallyDrop::new(Arc::from_raw(self as *const Registry));
        Arc::clone(&arc)
    }

    pub(crate) fn num_threads(&self) -> usize {
        self.deques.len()
    }

    /// Announces newly published work to sleeping workers. Cheap when the
    /// pool is saturated: without sleepers this is one relaxed load. A
    /// worker that races into the sleep protocol after the load still wakes
    /// within the sleep tick.
    fn notify_work(&self) {
        if self.sleepers.load(Ordering::Relaxed) == 0 {
            return;
        }
        let mut activity = self.activity.lock().unwrap();
        *activity = activity.wrapping_add(1);
        self.wake.notify_all();
    }

    fn push_local(&self, index: usize, job: JobRef) {
        self.deques[index].lock().unwrap().push_back(job);
        self.notify_work();
    }

    fn inject(&self, job: JobRef) {
        self.injector.lock().unwrap().push_back(job);
        self.notify_work();
    }

    /// Pops the back of `index`'s own deque *iff* it is still the given job
    /// (i.e. no thief took it). LIFO discipline guarantees that any jobs
    /// pushed by nested joins during `oper_a` have already been popped, so
    /// "ours" can only be at the back or gone.
    fn pop_local_if(&self, index: usize, data: *const ()) -> bool {
        let mut deque = self.deques[index].lock().unwrap();
        if deque.back().map(|j| j.data) == Some(data) {
            deque.pop_back();
            true
        } else {
            false
        }
    }

    /// One scheduling round: own deque (LIFO) → injector → steal (FIFO).
    fn find_work(&self, index: usize) -> Option<JobRef> {
        if let Some(job) = self.deques[index].lock().unwrap().pop_back() {
            return Some(job);
        }
        if let Some(job) = self.injector.lock().unwrap().pop_front() {
            return Some(job);
        }
        let n = self.deques.len();
        for offset in 1..n {
            let victim = (index + offset) % n;
            if let Some(job) = self.deques[victim].lock().unwrap().pop_front() {
                return Some(job);
            }
        }
        None
    }

    /// Work-stealing wait: helps execute other jobs until `latch` is set.
    /// Only called from worker threads.
    fn wait_until(&self, index: usize, latch: &Latch) {
        while !latch.probe() {
            match self.find_work(index) {
                // SAFETY: every queued JobRef is alive until executed.
                Some(job) => unsafe { job.execute() },
                None => latch.wait_timeout(SLEEP_TICK),
            }
        }
    }

    /// Tells the workers to exit once their queues are drained, and waits
    /// for them (bounded by the sleep tick).
    fn shutdown(&self) {
        self.terminate.store(true, Ordering::Release);
        self.notify_work();
        while self.running.load(Ordering::Acquire) > 0 {
            self.notify_work();
            std::thread::sleep(Duration::from_micros(50));
        }
    }

    /// Runs `op` inside the pool and blocks until it completes. Must be
    /// called from a thread *outside* this registry.
    fn in_worker_external<F, R>(&self, op: F) -> R
    where
        F: FnOnce() -> R + Send,
        R: Send,
    {
        let job = StackJob::new(op);
        // SAFETY: we block on the latch below, so the stack job outlives its
        // execution.
        let job_ref = unsafe { job.as_job_ref() };
        self.inject(job_ref);
        job.latch.wait();
        job.into_result()
    }
}

fn worker_loop(registry: Arc<Registry>, index: usize) {
    WORKER.with(|w| w.set(Some((Arc::as_ptr(&registry), index))));
    loop {
        if let Some(job) = registry.find_work(index) {
            // SAFETY: every queued JobRef is alive until executed.
            unsafe { job.execute() };
            continue;
        }
        if registry.terminate.load(Ordering::Acquire) {
            break;
        }
        // Sleep protocol: register as a sleeper *before* the confirming
        // re-scan, so a concurrent publish either sees the sleeper count
        // (and notifies) or enqueued early enough for the re-scan to find
        // it. The races this relaxed protocol leaves open cost at most one
        // sleep tick of latency, never lost work.
        registry.sleepers.fetch_add(1, Ordering::AcqRel);
        let last_activity = *registry.activity.lock().unwrap();
        if let Some(job) = registry.find_work(index) {
            registry.sleepers.fetch_sub(1, Ordering::AcqRel);
            // SAFETY: every queued JobRef is alive until executed.
            unsafe { job.execute() };
            continue;
        }
        let activity = registry.activity.lock().unwrap();
        if *activity == last_activity {
            let _ = registry.wake.wait_timeout(activity, SLEEP_TICK).unwrap();
        }
        registry.sleepers.fetch_sub(1, Ordering::AcqRel);
    }
    WORKER.with(|w| w.set(None));
    registry.running.fetch_sub(1, Ordering::AcqRel);
}

// ---------------------------------------------------------------------------
// join
// ---------------------------------------------------------------------------

/// Takes two closures and *potentially* runs them in parallel, returning
/// both results. The call only returns once both closures have completed;
/// a panic in either is re-thrown after the other has quiesced.
///
/// This mirrors `rayon::join`, including the scheduling strategy: `oper_b`
/// is published for theft, `oper_a` runs on the calling thread, and an
/// un-stolen `oper_b` is reclaimed and run inline (so sequential cost is two
/// queue operations, not a thread handoff).
pub fn join<A, B, RA, RB>(oper_a: A, oper_b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let worker = WORKER.with(|w| w.get());
    match worker {
        Some((reg, index)) => {
            // SAFETY: TLS pointer is valid for the life of the worker.
            let registry = unsafe { &*reg };
            if registry.num_threads() == 1 {
                // Nobody to steal: skip the queue round-trip entirely.
                return (oper_a(), oper_b());
            }
            join_in_worker(registry, index, oper_a, oper_b)
        }
        None => {
            let registry = Arc::clone(global_registry());
            if registry.num_threads() == 1 {
                return (oper_a(), oper_b());
            }
            registry.in_worker_external(move || join(oper_a, oper_b))
        }
    }
}

fn join_in_worker<A, B, RA, RB>(registry: &Registry, index: usize, oper_a: A, oper_b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let job_b = StackJob::new(oper_b);
    // SAFETY: this frame does not return until job_b has run (inline, or by
    // a thief signalled through the latch), so the reference cannot dangle.
    let job_b_ref = unsafe { job_b.as_job_ref() };
    let job_b_data = job_b_ref.data;
    registry.push_local(index, job_b_ref);

    let result_a = panic::catch_unwind(AssertUnwindSafe(oper_a));

    if registry.pop_local_if(index, job_b_data) {
        // Fast path: b was never stolen; run it here. If a panicked, b is
        // simply dropped unexecuted (matching rayon).
        match result_a {
            Ok(ra) => (ra, job_b.run_inline()),
            Err(p) => panic::resume_unwind(p),
        }
    } else {
        // b is (being) executed elsewhere: help the pool until it is done.
        // Even if a panicked we must wait — the thief is using our stack.
        registry.wait_until(index, &job_b.latch);
        match result_a {
            Ok(ra) => (ra, job_b.into_result()),
            Err(p) => panic::resume_unwind(p),
        }
    }
}

// ---------------------------------------------------------------------------
// scope / spawn
// ---------------------------------------------------------------------------

/// A scope for spawning borrowed tasks; see [`scope`].
pub struct Scope<'scope> {
    registry: Arc<Registry>,
    /// Tasks spawned but not yet finished (transitively: a task's own spawns
    /// are counted before its decrement).
    pending: AtomicUsize,
    panic: Mutex<Option<Box<dyn Any + Send>>>,
    /// Invariant over `'scope` (mirrors rayon).
    marker: std::marker::PhantomData<&'scope mut &'scope ()>,
}

/// Wrapper making a raw scope pointer `Send` for capture by spawned jobs.
/// Sound because the `Scope` outlives all of its jobs by construction.
struct ScopePtr<'scope>(*const Scope<'scope>);
unsafe impl Send for ScopePtr<'_> {}

impl<'scope> ScopePtr<'scope> {
    /// Method (rather than field) access, so closures capture the whole
    /// `Send` wrapper instead of precisely capturing the raw-pointer field.
    fn get(&self) -> *const Scope<'scope> {
        self.0
    }
}

/// Creates a scope in which closures borrowing non-`'static` data can be
/// spawned onto the pool. `scope` blocks until every spawned task (and their
/// transitive spawns) has completed; the first captured panic is then
/// re-thrown.
pub fn scope<'scope, OP, R>(op: OP) -> R
where
    OP: FnOnce(&Scope<'scope>) -> R + Send,
    R: Send,
{
    let scope = Scope {
        registry: current_registry(),
        pending: AtomicUsize::new(0),
        panic: Mutex::new(None),
        marker: std::marker::PhantomData,
    };
    let result = panic::catch_unwind(AssertUnwindSafe(|| op(&scope)));
    scope.wait_all();
    if let Some(p) = scope.panic.lock().unwrap().take() {
        panic::resume_unwind(p);
    }
    match result {
        Ok(r) => r,
        Err(p) => panic::resume_unwind(p),
    }
}

impl<'scope> Scope<'scope> {
    /// Spawns a task that may borrow anything outliving the scope. Tasks may
    /// recursively spawn into the same scope.
    pub fn spawn<BODY>(&self, body: BODY)
    where
        BODY: FnOnce(&Scope<'scope>) + Send + 'scope,
    {
        self.pending.fetch_add(1, Ordering::AcqRel);
        let scope_ptr = ScopePtr(self as *const Scope<'scope>);
        let func: Box<dyn FnOnce() + Send + 'scope> = Box::new(move || {
            // SAFETY: `scope` blocks in wait_all until pending == 0, which
            // can only happen after this closure's decrement below.
            let scope = unsafe { &*scope_ptr.get() };
            if let Err(p) = panic::catch_unwind(AssertUnwindSafe(|| body(scope))) {
                scope.panic.lock().unwrap().get_or_insert(p);
            }
            scope.pending.fetch_sub(1, Ordering::AcqRel);
        });
        // SAFETY: the lifetime is erased to queue the job, but wait_all
        // guarantees execution finishes before 'scope ends.
        let func: Box<dyn FnOnce() + Send + 'static> = unsafe { std::mem::transmute(func) };
        let job = HeapJob::new(func);
        match WORKER.with(|w| w.get()) {
            Some((reg, index)) if std::ptr::eq(reg, Arc::as_ptr(&self.registry)) => {
                self.registry.push_local(index, job)
            }
            _ => self.registry.inject(job),
        }
    }

    fn wait_all(&self) {
        let worker = WORKER.with(|w| w.get());
        while self.pending.load(Ordering::Acquire) > 0 {
            let helped = match worker {
                Some((reg, index)) if std::ptr::eq(reg, Arc::as_ptr(&self.registry)) => {
                    // SAFETY: TLS registry pointer valid for the worker's life.
                    match unsafe { (*reg).find_work(index) } {
                        Some(job) => {
                            // SAFETY: queued jobs are alive until executed.
                            unsafe { job.execute() };
                            true
                        }
                        None => false,
                    }
                }
                _ => false,
            };
            if !helped {
                std::thread::sleep(Duration::from_micros(50));
            }
        }
    }
}

/// Fire-and-forget spawn of a `'static` task onto the current pool.
pub fn spawn<F>(func: F)
where
    F: FnOnce() + Send + 'static,
{
    let registry = current_registry();
    let job = HeapJob::new(Box::new(func));
    match WORKER.with(|w| w.get()) {
        Some((reg, index)) if std::ptr::eq(reg, Arc::as_ptr(&registry)) => {
            registry.push_local(index, job)
        }
        _ => registry.inject(job),
    }
}

/// Number of threads in the current pool: the enclosing [`ThreadPool`] when
/// called from inside [`ThreadPool::install`] (or a worker), otherwise the
/// global pool (building it on first use).
pub fn current_num_threads() -> usize {
    current_registry().num_threads()
}

// ---------------------------------------------------------------------------
// ThreadPool / ThreadPoolBuilder
// ---------------------------------------------------------------------------

/// An explicitly constructed pool, independent of the global one. Mirrors
/// `rayon::ThreadPool`: obtain via [`ThreadPoolBuilder::build`], then run
/// closures inside it with [`ThreadPool::install`].
pub struct ThreadPool {
    registry: Arc<Registry>,
}

impl ThreadPool {
    /// Executes `op` within the pool: parallel operations inside `op` use
    /// this pool's workers. Blocks until `op` returns.
    pub fn install<OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce() -> R + Send,
        R: Send,
    {
        let on_this_pool = WORKER
            .with(|w| w.get())
            .is_some_and(|(reg, _)| std::ptr::eq(reg, Arc::as_ptr(&self.registry)));
        if on_this_pool {
            op()
        } else {
            self.registry.in_worker_external(op)
        }
    }

    /// The number of worker threads in this pool.
    pub fn current_num_threads(&self) -> usize {
        self.registry.num_threads()
    }

    /// Equivalent of [`join`], but guaranteed to execute inside this pool.
    pub fn join<A, B, RA, RB>(&self, oper_a: A, oper_b: B) -> (RA, RB)
    where
        A: FnOnce() -> RA + Send,
        B: FnOnce() -> RB + Send,
        RA: Send,
        RB: Send,
    {
        self.install(|| join(oper_a, oper_b))
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        // Workers drain their queues before exiting, so no queued work is
        // lost and no worker outlives the pool object.
        self.registry.shutdown();
    }
}

/// Error returned when a pool cannot be built (currently only: the global
/// pool was already initialized).
#[derive(Debug)]
pub struct ThreadPoolBuildError {
    msg: &'static str,
}

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.msg)
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder for [`ThreadPool`]s (and the global pool). Mirrors
/// `rayon::ThreadPoolBuilder`'s core surface.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// A builder with default settings (thread count from
    /// `RAYON_NUM_THREADS`, falling back to the available parallelism).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the worker count; `0` (the default) means "use the environment
    /// default", exactly like rayon.
    pub fn num_threads(mut self, num_threads: usize) -> Self {
        self.num_threads = num_threads;
        self
    }

    fn resolved_threads(&self) -> usize {
        if self.num_threads > 0 {
            self.num_threads
        } else {
            env_default_threads()
        }
    }

    /// Builds a standalone pool.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            registry: Registry::new(self.resolved_threads()),
        })
    }

    /// Installs the global pool. Fails if it was already initialized —
    /// explicitly, or implicitly by a prior parallel call.
    pub fn build_global(self) -> Result<(), ThreadPoolBuildError> {
        let already = ThreadPoolBuildError {
            msg: "the global thread pool has already been initialized",
        };
        if GLOBAL.get().is_some() {
            return Err(already);
        }
        let registry = Registry::new(self.resolved_threads());
        GLOBAL.set(registry).map_err(|rejected| {
            // Lost a race with a concurrent (or lazy) initialization: tear
            // the just-built workers down instead of leaking them.
            rejected.shutdown();
            already
        })
    }
}
