//! Offline stand-in for the [`bytes`](https://crates.io/crates/bytes) crate:
//! the `Buf`/`BufMut` subset pardec's binary graph snapshot format uses —
//! `&[u8]` as a consuming read cursor, `Vec<u8>` as an appending writer.
//! Panics on under-length reads, matching the real crate's contract.

/// Read side: a cursor over bytes. Implemented for `&[u8]`, which advances
/// by re-slicing.
pub trait Buf {
    fn remaining(&self) -> usize;
    fn advance(&mut self, cnt: usize);
    fn get_u8(&mut self) -> u8;
    fn get_u32_le(&mut self) -> u32;
    fn get_u64_le(&mut self) -> u64;
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end of buffer");
        *self = &self[cnt..];
    }

    fn get_u8(&mut self) -> u8 {
        let (head, rest) = self.split_at(1);
        *self = rest;
        head[0]
    }

    fn get_u32_le(&mut self) -> u32 {
        let (head, rest) = self.split_at(4);
        *self = rest;
        u32::from_le_bytes(head.try_into().unwrap())
    }

    fn get_u64_le(&mut self) -> u64 {
        let (head, rest) = self.split_at(8);
        *self = rest;
        u64::from_le_bytes(head.try_into().unwrap())
    }
}

/// Write side: an append-only sink. Implemented for `Vec<u8>`.
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);
    fn put_u8(&mut self, v: u8);
    fn put_u32_le(&mut self, v: u32);
    fn put_u64_le(&mut self, v: u64);
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }

    fn put_u8(&mut self, v: u8) {
        self.push(v);
    }

    fn put_u32_le(&mut self, v: u32) {
        self.extend_from_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.extend_from_slice(&v.to_le_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let mut out = Vec::new();
        out.put_slice(b"hdr");
        out.put_u64_le(0xdead_beef_cafe_f00d);
        out.put_u32_le(42);
        out.put_u8(7);

        let mut cur: &[u8] = &out;
        assert_eq!(cur.remaining(), 3 + 8 + 4 + 1);
        cur.advance(3);
        assert_eq!(cur.get_u64_le(), 0xdead_beef_cafe_f00d);
        assert_eq!(cur.get_u32_le(), 42);
        assert_eq!(cur.get_u8(), 7);
        assert_eq!(cur.remaining(), 0);
    }

    #[test]
    #[should_panic]
    fn short_read_panics() {
        let mut cur: &[u8] = &[1, 2, 3];
        let _ = cur.get_u64_le();
    }
}
