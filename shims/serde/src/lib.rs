//! Offline stand-in for [`serde`](https://crates.io/crates/serde).
//!
//! `Serialize`/`Deserialize` are **marker traits** here: enough for
//! `#[derive(Serialize, Deserialize)]` and trait bounds to compile, with no
//! data-model plumbing behind them. Nothing in this workspace serializes
//! through serde yet (the sketches only advertise serializability); when a
//! real wire format lands, swap the real crate in via `Cargo.toml` — call
//! sites are source-compatible.

pub use serde_derive::{Deserialize, Serialize};

pub trait Serialize {}

pub trait Deserialize<'de>: Sized {}

// NOTE: the derive macros expand to `impl ::serde::... for T`, which only
// resolves from *dependent* crates; they are exercised by pardec-sketch's
// `FmSketch`/`HllSketch` derives and its serde smoke test.

#[cfg(test)]
mod tests {
    struct Probe;
    impl crate::Serialize for Probe {}
    impl<'de> crate::Deserialize<'de> for Probe {}

    fn assert_bounds<T: crate::Serialize + for<'de> crate::Deserialize<'de>>() {}

    #[test]
    fn marker_traits_are_implementable() {
        assert_bounds::<Probe>();
    }
}
