//! Offline stand-in for `serde_derive`. The shim `serde` crate's
//! `Serialize`/`Deserialize` are marker traits, so the derives only need to
//! emit `impl` blocks for the deriven type. Parsed by hand (no `syn`/`quote`
//! available offline): the type name is the identifier following the
//! `struct`/`enum` keyword. Generic types are unsupported — the sketch types
//! that derive these are concrete.

use proc_macro::{TokenStream, TokenTree};

fn type_name(input: TokenStream) -> String {
    let mut tokens = input.into_iter();
    while let Some(tt) = tokens.next() {
        if let TokenTree::Ident(ident) = &tt {
            let kw = ident.to_string();
            if kw == "struct" || kw == "enum" || kw == "union" {
                if let Some(TokenTree::Ident(name)) = tokens.next() {
                    return name.to_string();
                }
            }
        }
    }
    panic!("serde shim derive: could not find a struct/enum name in the input");
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl ::serde::Serialize for {name} {{}}")
        .parse()
        .unwrap()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl<'de> ::serde::Deserialize<'de> for {name} {{}}")
        .parse()
        .unwrap()
}
