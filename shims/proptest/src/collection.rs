//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::Gen;
use std::ops::Range;

/// Mirror of `proptest::collection::vec`: a vector whose length is drawn
/// from `len` and whose elements are drawn from `element`.
pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
    assert!(len.start < len.end, "empty length range");
    VecStrategy { element, len }
}

pub struct VecStrategy<S> {
    element: S,
    len: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, gen: &mut Gen) -> Vec<S::Value> {
        let span = (self.len.end - self.len.start) as u64;
        let n = self.len.start + gen.below(span) as usize;
        (0..n).map(|_| self.element.sample(gen)).collect()
    }
}
