//! Offline stand-in for [`proptest`](https://crates.io/crates/proptest).
//!
//! Implements the authoring surface pardec's property tests use — the
//! [`Strategy`] trait with `prop_map`/`boxed`, range and tuple strategies,
//! [`collection::vec`], [`any`], `prop_oneof!`, and the `proptest!` macro
//! with `#![proptest_config(...)]`, `prop_assert*!` and `prop_assume!` —
//! executed by a simple deterministic runner. Differences from the real
//! crate: no shrinking (a failing case panics with the sampled inputs via
//! the assertion message) and a fixed per-test RNG stream rather than a
//! persisted failure seed. Test sources are fully source-compatible with
//! real proptest.

pub mod collection;
pub mod strategy;
pub mod test_runner;

pub use strategy::{Arbitrary, BoxedStrategy, Strategy};
pub use test_runner::TestCaseReject;

/// Mirror of `proptest::prelude::ProptestConfig` (the `cases` knob only).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of successful (non-rejected) cases each property must pass.
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real default (256) is tuned for shrinking-capable runs; the
        // shim keeps CI latency proportionate.
        ProptestConfig { cases: 64 }
    }
}

/// Uniform draw over a type's whole value domain.
pub fn any<T: Arbitrary>() -> strategy::Any<T> {
    strategy::Any(std::marker::PhantomData)
}

pub mod prelude {
    /// `prop::collection::vec(...)`-style paths, as in the real prelude.
    pub use crate as prop;
    pub use crate::strategy::{Arbitrary, BoxedStrategy, Strategy};
    pub use crate::{any, ProptestConfig, TestCaseReject};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Mirror of `prop_oneof!`: uniform choice between heterogeneous strategies
/// producing the same `Value`.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( $crate::strategy::Strategy::boxed($arm) ),+
        ])
    };
}

/// Mirror of `prop_assert!`: fails the current case. Without shrinking there
/// is no minimal counterexample to report, so this panics in place (the
/// runner's case banner identifies the sampled inputs).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Mirror of `prop_assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Mirror of `prop_assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Mirror of `prop_assume!`: rejects the current case (it does not count
/// toward `cases`) instead of failing it.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseReject);
        }
    };
}

/// Mirror of `proptest!`: each `fn name(binding in strategy, ...) { body }`
/// becomes a `#[test]` that samples the strategies and runs the body until
/// `cases` successes (rejections via `prop_assume!` retry with fresh draws).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { (<$crate::ProptestConfig as ::core::default::Default>::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ( ($config:expr)
      $( $(#[$meta:meta])*
         fn $name:ident( $($binding:ident in $strat:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                // Per-test deterministic stream: derived from the test name
                // so sibling properties do not share draw sequences.
                let mut gen = $crate::test_runner::Gen::from_name(stringify!($name));
                let mut successes: u32 = 0;
                let mut attempts: u32 = 0;
                let max_attempts = config.cases.saturating_mul(16).max(1024);
                while successes < config.cases {
                    attempts += 1;
                    assert!(
                        attempts <= max_attempts,
                        "proptest shim: prop_assume! rejected too many cases \
                         ({} attempts for {} successes)",
                        attempts,
                        successes,
                    );
                    $( let $binding =
                        $crate::strategy::Strategy::sample(&($strat), &mut gen); )+
                    // The closure exists so `prop_assume!` can early-return a
                    // rejection out of `$body`; it is not redundant.
                    #[allow(clippy::redundant_closure_call)]
                    let outcome: ::core::result::Result<(), $crate::TestCaseReject> =
                        (|| { $body ::core::result::Result::Ok(()) })();
                    if outcome.is_ok() {
                        successes += 1;
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn evens() -> impl Strategy<Value = u64> {
        (0u64..1000).prop_map(|x| x * 2)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(40))]

        #[test]
        fn ranges_and_maps(x in 3usize..17, y in evens(), f in 0.25f64..0.75) {
            prop_assert!((3..17).contains(&x));
            prop_assert_eq!(y % 2, 0);
            prop_assert!((0.25..0.75).contains(&f), "f = {f}");
        }

        #[test]
        fn oneof_vec_and_assume(
            xs in prop::collection::vec(any::<u32>(), 0..20),
            pick in prop_oneof![0usize..5, 10usize..15],
        ) {
            prop_assume!(!xs.is_empty());
            prop_assert!(pick < 5 || (10..15).contains(&pick));
            prop_assert_ne!(xs.len(), 0);
        }

        #[test]
        fn tuples(t in (0u32..9, 1u64..5, 0u16..3)) {
            let (a, b, c) = t;
            prop_assert!(a < 9 && (1..5).contains(&b) && c < 3);
        }
    }
}
