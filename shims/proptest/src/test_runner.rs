//! The shim's entropy source: a self-contained xoshiro256++ stream (no
//! dependency on the `rand` shim so this crate stays droppable on its own).

/// Deterministic generator handed to [`crate::Strategy::sample`].
#[derive(Clone, Debug)]
pub struct Gen {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

impl Gen {
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        Gen {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Seed derived from a test's name (FNV-1a) so each property walks its
    /// own deterministic stream.
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        Gen::new(h)
    }

    pub fn next_u64(&mut self) -> u64 {
        let out = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }

    /// Uniform in `[0, bound)` via multiply-shift; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Marker returned (via `Err`) by `prop_assume!` to discard a case.
#[derive(Clone, Copy, Debug)]
pub struct TestCaseReject;
