//! Strategies: composable value generators. Mirrors the names from
//! `proptest::strategy` minus shrinking (`sample` replaces `new_tree`).

use crate::test_runner::Gen;
use std::marker::PhantomData;
use std::ops::Range;

/// A generator of values of type `Value`.
pub trait Strategy {
    type Value;

    fn sample(&self, gen: &mut Gen) -> Self::Value;

    /// Mirror of `Strategy::prop_map`.
    fn prop_map<R, F: Fn(Self::Value) -> R>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { strategy: self, f }
    }

    /// Mirror of `Strategy::boxed` (type erasure for `prop_oneof!` arms).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// Mirror of `proptest::strategy::BoxedStrategy`.
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;

    fn sample(&self, gen: &mut Gen) -> S::Value {
        (**self).sample(gen)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn sample(&self, gen: &mut Gen) -> S::Value {
        (**self).sample(gen)
    }
}

/// `a..b` draws uniformly from the half-open range.
macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, gen: &mut Gen) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                self.start + gen.below((self.end - self.start) as u64) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, gen: &mut Gen) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + gen.unit_f64() * (self.end - self.start)
    }
}

/// Mirror of `strategy::Just`: always yields a clone of the value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _gen: &mut Gen) -> T {
        self.0.clone()
    }
}

/// Result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    strategy: S,
    f: F,
}

impl<S: Strategy, R, F: Fn(S::Value) -> R> Strategy for Map<S, F> {
    type Value = R;

    fn sample(&self, gen: &mut Gen) -> R {
        (self.f)(self.strategy.sample(gen))
    }
}

/// Uniform choice between same-valued strategies (`prop_oneof!`).
pub struct Union<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn sample(&self, gen: &mut Gen) -> V {
        let arm = gen.below(self.arms.len() as u64) as usize;
        self.arms[arm].sample(gen)
    }
}

/// Tuples of strategies sample element-wise.
macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn sample(&self, gen: &mut Gen) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(gen),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);

/// Whole-domain sampling for [`crate::any`].
pub struct Any<T>(pub(crate) PhantomData<T>);

/// Types with a canonical whole-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    fn arbitrary(gen: &mut Gen) -> Self;
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, gen: &mut Gen) -> T {
        T::arbitrary(gen)
    }
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(gen: &mut Gen) -> $t {
                gen.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(gen: &mut Gen) -> bool {
        gen.next_u64() >> 63 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(gen: &mut Gen) -> f64 {
        gen.unit_f64()
    }
}
