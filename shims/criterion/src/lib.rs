//! Offline stand-in for [`criterion`](https://crates.io/crates/criterion).
//!
//! Bench files author against the criterion 0.5 API (`criterion_group!`,
//! `benchmark_group`, `bench_function`, `bench_with_input`, `Bencher::iter`)
//! and this shim runs them with plain wall-clock timing: a short warm-up,
//! `sample_size` timed samples, and a `group/id  median .. max` line per
//! benchmark on stdout. No statistics, plots, or HTML reports. Running with
//! `--test` or `--list` (as `cargo test` would for a bench target) executes
//! each closure once / lists names, so bench binaries stay usable as smoke
//! tests. Swap in real criterion via `Cargo.toml` for publication-grade
//! numbers.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Mirror of `criterion::Criterion`: builder for measurement settings plus
/// the entry point for benchmark groups.
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    mode: Mode,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// Full measurement (`cargo bench`).
    Bench,
    /// One pass per benchmark, no reporting (`--test`).
    Test,
    /// Print names only (`--list`).
    List,
}

fn mode_from_args() -> Mode {
    let mut mode = Mode::Bench;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--test" => mode = Mode::Test,
            "--list" => mode = Mode::List,
            _ => {}
        }
    }
    mode
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(2),
            mode: mode_from_args(),
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }
}

/// Mirror of `criterion::BenchmarkId`: a `function_name/parameter` pair.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// Mirror of `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(id.into(), |b| f(b));
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(id.into(), |b| f(b, input));
        self
    }

    fn run(&mut self, id: BenchmarkId, mut f: impl FnMut(&mut Bencher)) {
        let label = format!("{}/{}", self.name, id.id);
        match self.criterion.mode {
            Mode::List => {
                println!("{label}: benchmark");
                return;
            }
            Mode::Test => {
                let mut b = Bencher::single_pass();
                f(&mut b);
                return;
            }
            Mode::Bench => {}
        }

        // Warm-up: repeat full passes until the warm-up budget elapses.
        let warm_until = Instant::now() + self.criterion.warm_up_time;
        loop {
            let mut b = Bencher::single_pass();
            f(&mut b);
            if Instant::now() >= warm_until {
                break;
            }
        }

        let deadline = Instant::now() + self.criterion.measurement_time;
        let mut samples: Vec<Duration> = Vec::with_capacity(self.criterion.sample_size);
        for i in 0..self.criterion.sample_size {
            let mut b = Bencher::timed();
            f(&mut b);
            samples.push(b.per_iteration());
            // Honour the measurement budget, but always take >= 2 samples.
            if i >= 1 && Instant::now() >= deadline {
                break;
            }
        }
        samples.sort_unstable();
        let median = samples[samples.len() / 2];
        let max = *samples.last().unwrap();
        println!(
            "{label}: median {} (max {}, {} samples)",
            fmt_duration(median),
            fmt_duration(max),
            samples.len()
        );
    }

    pub fn finish(self) {}
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos >= 1_000_000_000 {
        format!("{:.3} s", d.as_secs_f64())
    } else if nanos >= 1_000_000 {
        format!("{:.3} ms", nanos as f64 / 1e6)
    } else if nanos >= 1_000 {
        format!("{:.3} µs", nanos as f64 / 1e3)
    } else {
        format!("{nanos} ns")
    }
}

/// Mirror of `criterion::Bencher`: `iter` times the closure.
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    fn single_pass() -> Self {
        Bencher {
            iterations: 1,
            elapsed: Duration::ZERO,
        }
    }

    fn timed() -> Self {
        Bencher {
            iterations: 1,
            elapsed: Duration::ZERO,
        }
    }

    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    fn per_iteration(&self) -> Duration {
        self.elapsed / self.iterations.max(1) as u32
    }
}

/// Opaque value barrier, re-exported from std.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Mirror of `criterion_group!`: produces a function that runs every target
/// against the (optionally custom) configuration.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = ::core::default::Default::default();
            targets = $($target),+
        );
    };
}

/// Mirror of `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
