//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate
//! (0.8 API subset).
//!
//! The build environment for this workspace has no access to crates.io, so
//! the handful of `rand` items the pardec crates use are reimplemented here
//! behind the same paths (`rand::rngs::StdRng`, `rand::{Rng, SeedableRng}`,
//! `rand::seq::SliceRandom`). The generator is xoshiro256++ seeded through
//! SplitMix64 — deterministic for a given seed, which is all the experiment
//! harness relies on. Swapping back to the real crate is a one-line
//! `Cargo.toml` change; no source edits are required.

pub mod rngs;
pub mod seq;

/// Core entropy source: everything derives from a 64-bit output stream.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// Seeding, restricted to the `seed_from_u64` entry point pardec uses.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be drawn uniformly from an `RngCore` (the `Standard`
/// distribution subset backing `Rng::gen`).
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits -> uniform in [0, 1), the rand 0.8 convention.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Half-open ranges that `Rng::gen_range` accepts.
pub trait SampleRange {
    type Output;
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                // Multiply-shift map of a uniform u64 onto [0, span): far less
                // biased than a modulo for the span sizes pardec draws.
                let v = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start + v as $t
            }
        }
    )*};
}

impl_int_range!(u16, u32, u64, usize);

impl SampleRange for core::ops::Range<f64> {
    type Output = f64;
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// The user-facing random-value API, blanket-implemented for every
/// [`RngCore`] exactly as in rand 0.8.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0, 1]");
        f64::sample(self) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn unit_interval() {
        let mut rng = StdRng::seed_from_u64(2);
        let mean = (0..10_000).map(|_| rng.gen::<f64>()).sum::<f64>() / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }
}
