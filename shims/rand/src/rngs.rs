//! Named generators. `StdRng` here is xoshiro256++ (not ChaCha12 as in the
//! real crate): pardec only needs a fast, deterministic, statistically solid
//! stream, not a cryptographic one.

use crate::{RngCore, SeedableRng};

/// xoshiro256++ (Blackman & Vigna), seeded through SplitMix64 so that any
/// 64-bit seed yields a well-mixed 256-bit state.
#[derive(Clone, Debug)]
pub struct StdRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        StdRng { s }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let out = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }
}
