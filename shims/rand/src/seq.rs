//! Sequence helpers (`SliceRandom` subset).

use crate::{Rng, SampleRange};

pub trait SliceRandom {
    /// Fisher–Yates shuffle, identical element-visit order to rand 0.8's
    /// (descending index, swap with a uniform draw below it).
    fn shuffle<R: Rng>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    fn shuffle<R: Rng>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = (0..i + 1).sample(rng);
            self.swap(i, j);
        }
    }
}
